//! Pre/inprocessing for the CDCL solver: SatELite-style bounded variable
//! elimination (BVE), occurrence-list subsumption with self-subsuming
//! resolution, and clause vivification between restarts.
//!
//! The design decisions that make this safe in an *incremental* solver:
//!
//! * **Model reconstruction.** Eliminating a variable by resolution removes
//!   it from the search, but bug-hunt witnesses must still assign it. Every
//!   elimination pushes the removed clauses onto an elimination stack;
//!   [`Solver::extend_model`] replays the stack in reverse after a `Sat`
//!   answer and picks the unique polarity that satisfies the removed
//!   clauses (Davis–Putnam reconstruction).
//!
//! * **Restore on reuse.** BVE is only equivalence-preserving while no new
//!   constraint mentions an eliminated variable. Incremental clients add
//!   clauses and assumptions after preprocessing, so instead of rejecting
//!   such references the solver *restores* the variable: its removed
//!   clauses are re-added (cascading through any eliminated variables they
//!   mention) and the variable re-enters the search. The resolvents stay —
//!   they are implied, hence harmless. Frozen variables
//!   ([`Solver::freeze_var`]) are therefore a performance hint that avoids
//!   restore churn on known interface variables, not a soundness
//!   requirement.
//!
//! * **Bounded, interruptible work.** Every loop polls the solve budget's
//!   cancellation token and the `sat::simplify` failpoint, so preprocessing
//!   can never stall a watchdog: an interrupted pass simply leaves the
//!   remaining candidates untouched, which is always sound.

use std::mem::size_of;

use crate::budget::Budget;
use crate::clause::{Clause, ClauseRef, Watcher};
use crate::failpoints;
use crate::types::{LBool, Lit, Var};

use super::Solver;

/// Failpoint site armed by the fault-injection suite to abort or poison
/// preprocessing and vivification passes.
const SIMPLIFY_FAILPOINT: &str = "sat::simplify";

/// Iterations between budget/failpoint polls inside the elimination and
/// subsumption loops.
const POLL_INTERVAL: usize = 64;

/// Tuning knobs for pre/inprocessing. The defaults are conservative enough
/// for the tiny CNFs of unit tests and effective on the multiplier-heavy
/// bit-blasted formulas the verifier produces.
#[derive(Clone, Debug)]
pub struct SimplifyConfig {
    /// Master switch; `false` restores the PR-4 textbook solver behavior.
    pub enabled: bool,
    /// Bounded variable elimination (preprocessing).
    pub bve: bool,
    /// Subsumption + self-subsuming resolution (preprocessing).
    pub subsumption: bool,
    /// Clause vivification between restarts (inprocessing).
    pub vivification: bool,
    /// Extra clauses a single elimination may add beyond the clauses it
    /// removes (0 = never grow the database).
    pub bve_grow: usize,
    /// Skip variables whose positive × negative occurrence product exceeds
    /// this (resolvent generation is quadratic in the occurrence counts).
    pub bve_occ_product: usize,
    /// Abort an elimination that would produce a resolvent longer than this.
    pub bve_max_resolvent_len: usize,
    /// Re-run preprocessing once this many clauses arrived since the last
    /// pass (the first solve always preprocesses).
    pub preprocess_min_new_clauses: usize,
    /// Defer a due preprocessing pass until the current solve call has spent
    /// this many conflicts (0 = preprocess eagerly at solve entry). Queries
    /// the existing clause database dispatches in a handful of conflicts
    /// never pay for BVE; a search that proves nontrivial runs the pass at
    /// its next restart and profits from it for the rest of the solve.
    pub preprocess_min_conflicts: u64,
    /// Conflicts between vivification rounds.
    pub viv_conflict_period: u64,
    /// Propagation ticket per vivification round.
    pub viv_propagation_ticket: u64,
    /// Only vivify clauses of at most this many literals.
    pub viv_max_clause_len: usize,
}

impl Default for SimplifyConfig {
    fn default() -> SimplifyConfig {
        SimplifyConfig {
            enabled: true,
            bve: true,
            subsumption: true,
            vivification: true,
            bve_grow: 8,
            bve_occ_product: 2000,
            bve_max_resolvent_len: 32,
            preprocess_min_new_clauses: 256,
            preprocess_min_conflicts: 250,
            viv_conflict_period: 2000,
            viv_propagation_ticket: 50_000,
            viv_max_clause_len: 32,
        }
    }
}

impl SimplifyConfig {
    /// All simplification disabled — the differential suites solve every
    /// query twice, once with this and once with the default.
    pub fn off() -> SimplifyConfig {
        SimplifyConfig { enabled: false, ..SimplifyConfig::default() }
    }
}

/// One committed elimination: the variable and the clauses resolution
/// removed. `restored` marks records undone by restore-on-reuse; they are
/// skipped during model reconstruction.
#[derive(Clone)]
struct ElimRecord {
    var: Var,
    clauses: Vec<Vec<Lit>>,
    restored: bool,
}

const NO_RECORD: u32 = u32::MAX;

/// Per-solver pre/inprocessing state.
#[derive(Clone)]
pub(crate) struct Simp {
    pub(crate) cfg: SimplifyConfig,
    /// Variables BVE must never eliminate (client interface variables and
    /// assumption variables seen so far).
    pub(crate) frozen: Vec<bool>,
    eliminated: Vec<bool>,
    /// Variables mentioned by clauses added since the last preprocessing
    /// pass — the BVE candidate set for incremental passes.
    touched: Vec<bool>,
    elim_stack: Vec<ElimRecord>,
    /// Latest elimination record per variable (`NO_RECORD` = live).
    elim_index: Vec<u32>,
    /// Count of currently-eliminated (not restored) variables.
    active_elims: usize,
    /// Clauses added since the last pass; gates re-preprocessing.
    pending_new: usize,
    /// A due pass was deferred at solve entry; the restart loop runs it once
    /// the call has spent `preprocess_min_conflicts` conflicts.
    pub(crate) deferred: bool,
    ran_once: bool,
    /// Clause-arena index reached by the last subsumption pass.
    clause_cursor: usize,
    viv_cursor: usize,
    conflicts_at_last_viv: u64,
}

impl Simp {
    pub(crate) fn new() -> Simp {
        Simp {
            cfg: SimplifyConfig::default(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            touched: Vec::new(),
            elim_stack: Vec::new(),
            elim_index: Vec::new(),
            active_elims: 0,
            pending_new: 0,
            deferred: false,
            ran_once: false,
            clause_cursor: 0,
            viv_cursor: 0,
            conflicts_at_last_viv: 0,
        }
    }

    pub(crate) fn on_new_var(&mut self) {
        self.frozen.push(false);
        self.eliminated.push(false);
        self.touched.push(true);
        self.elim_index.push(NO_RECORD);
    }

    #[inline]
    pub(crate) fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    pub(crate) fn note_clause_added(&mut self, lits: &[Lit]) {
        self.pending_new += 1;
        for l in lits {
            self.touched[l.var().index()] = true;
        }
    }

    /// Gate for the inprocessing hook in the restart loop; advances the
    /// round marker when it fires.
    pub(crate) fn should_vivify(&mut self, conflicts: u64) -> bool {
        if !(self.cfg.enabled && self.cfg.vivification) {
            return false;
        }
        if conflicts.saturating_sub(self.conflicts_at_last_viv) < self.cfg.viv_conflict_period {
            return false;
        }
        self.conflicts_at_last_viv = conflicts;
        true
    }
}

/// Signature (Bloom filter over variable indices) for fast non-subset tests:
/// `sig(C) & !sig(D) != 0` proves C ⊄ D.
fn clause_sig(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
}

/// Outcome of testing clause C against clause D.
enum Sub {
    No,
    /// Every literal of C occurs in D: C subsumes D.
    Subsumes,
    /// Every literal of C occurs in D except this one, whose negation does:
    /// D can be strengthened by removing the negation (self-subsumption).
    Strengthen(Lit),
}

fn subsume_check(c: &[Lit], d: &[Lit]) -> Sub {
    let mut flipped: Option<Lit> = None;
    for &l in c {
        if d.contains(&l) {
            continue;
        }
        if d.contains(&!l) {
            if flipped.is_some() {
                return Sub::No;
            }
            flipped = Some(l);
            continue;
        }
        return Sub::No;
    }
    match flipped {
        None => Sub::Subsumes,
        Some(l) => Sub::Strengthen(l),
    }
}

/// Resolvent of `a` (containing `v`) and `b` (containing `¬v`) on `v`;
/// `None` for tautologies.
fn resolve_on(a: &[Lit], b: &[Lit], v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(a.len() + b.len());
    for &l in a.iter().chain(b.iter()) {
        if l.var() != v {
            out.push(l);
        }
    }
    out.sort_unstable();
    out.dedup();
    // Complementary literals have adjacent codes, so a tautology shows up
    // as a consecutive pair after sorting.
    if out.windows(2).any(|w| w[1] == !w[0]) {
        return None;
    }
    Some(out)
}

impl Solver {
    /// Level-0 entry hook of `solve_with`: restore eliminated variables the
    /// assumptions mention, then run the (gated) preprocessing pass. Either
    /// step may set `ok = false`.
    pub(super) fn prepare_solve(&mut self, assumptions: &[Lit], budget: &Budget) {
        // Restoring referenced assumptions is a soundness requirement and
        // runs even when simplification has since been switched off.
        if self.simp.active_elims > 0 {
            let needed: Vec<Var> = assumptions
                .iter()
                .map(|l| l.var())
                .filter(|&v| self.simp.is_eliminated(v))
                .collect();
            if !needed.is_empty() {
                self.restore_vars(needed);
                if !self.ok {
                    return;
                }
            }
        }
        if !self.simp.cfg.enabled {
            return;
        }
        // Assumption variables stay frozen from here on: the same variables
        // tend to be assumed again (session guards), and eliminating them
        // would force a restore on the next call.
        for a in assumptions {
            self.simp.frozen[a.var().index()] = true;
        }
        // Incremental passes only pay off once enough new material arrived:
        // the absolute floor stops thrashing on tiny sessions, the
        // proportional term stops an N-clause database from being re-scanned
        // for every few hundred clauses a session query appends.
        self.simp.deferred = false;
        let threshold = self.simp.cfg.preprocess_min_new_clauses.max(self.clauses.len() / 8);
        if self.simp.ran_once && self.simp.pending_new < threshold {
            return;
        }
        // A due pass still only runs once the search proves nontrivial:
        // queries the current database dispatches in a handful of conflicts
        // never pay for BVE. The restart loop picks the deferral up.
        if self.simp.cfg.preprocess_min_conflicts > 0 {
            self.simp.deferred = true;
            return;
        }
        self.preprocess_pass(budget);
    }

    /// Run one gated preprocessing pass and reset its bookkeeping. Called
    /// from `prepare_solve` (eager) or from the restart loop (deferred);
    /// both sites are strictly at decision level 0.
    pub(super) fn preprocess_pass(&mut self, budget: &Budget) {
        self.simp.deferred = false;
        self.preprocess(budget);
        self.simp.ran_once = true;
        self.simp.pending_new = 0;
        self.simp.clause_cursor = self.clauses.len();
        for t in &mut self.simp.touched {
            *t = false;
        }
    }

    /// One preprocessing pass: level-0 cleanup, subsumption/self-subsuming
    /// resolution over the new clauses, then bounded variable elimination.
    /// Watch lists are stale throughout and rebuilt before any propagation.
    fn preprocess(&mut self, budget: &Budget) {
        debug_assert_eq!(self.decision_level(), 0);
        // Strip level-0-assigned literals first so occurrence lists and
        // resolvents only ever see unassigned literals.
        self.simplify();
        if !self.ok {
            return;
        }
        // Fault injection: Panic unwinds (rung isolation catches it); the
        // degradation faults abort the pass, which is always sound.
        if failpoints::trip(SIMPLIFY_FAILPOINT).is_some() {
            return;
        }

        let first = !self.simp.ran_once;
        let mut occs: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars()];
        let mut sigs: Vec<u64> = vec![0; self.clauses.len()];
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted || c.learnt {
                continue;
            }
            sigs[i] = clause_sig(&c.lits);
            for &l in &c.lits {
                occs[l.var().index()].push(i as u32);
            }
        }
        if self.simp.cfg.subsumption {
            let mut queue: Vec<u32> = (0..self.clauses.len())
                .filter(|&i| {
                    (first || i >= self.simp.clause_cursor)
                        && !self.clauses[i].deleted
                        && !self.clauses[i].learnt
                })
                .map(|i| i as u32)
                .collect();
            self.subsumption_pass(&mut queue, &occs, &mut sigs, budget);
        }
        if self.ok && self.simp.cfg.bve && !budget.interrupted() {
            self.bve_pass(first, &mut occs, &mut sigs, budget);
        }
        self.finish_preprocess();
    }

    /// Commit a unit clause derived while the watch lists are down: assign
    /// it on the level-0 trail *now* (so later eliminations see the fact —
    /// BVE skips assigned variables) and let `finish_preprocess` re-close
    /// the clause set under propagation once watches are rebuilt.
    fn preprocess_unit(&mut self, u: Lit) {
        match self.value(u) {
            LBool::True => {}
            LBool::False => self.ok = false,
            LBool::Undef => self.assign(u, None),
        }
    }

    /// Backward subsumption and self-subsuming resolution seeded from the
    /// queued clauses. For each queued clause C, clauses containing C's
    /// rarest variable are tested: supersets of C are deleted, and near-
    /// supersets differing in one flipped literal are strengthened (the
    /// resolvent replaces them). Strengthened clauses re-enter the queue.
    fn subsumption_pass(
        &mut self,
        queue: &mut Vec<u32>,
        occs: &[Vec<u32>],
        sigs: &mut [u64],
        budget: &Budget,
    ) {
        let mut qi = 0;
        while qi < queue.len() {
            if qi % POLL_INTERVAL == 0
                && (budget.interrupted() || failpoints::trip(SIMPLIFY_FAILPOINT).is_some())
            {
                return;
            }
            let ci = queue[qi] as usize;
            qi += 1;
            if self.clauses[ci].deleted {
                continue;
            }
            let lits = self.clauses[ci].lits.clone();
            let Some(best) = lits.iter().map(|l| l.var()).min_by_key(|v| occs[v.index()].len())
            else {
                continue;
            };
            let csig = clause_sig(&lits);
            for &k in &occs[best.index()] {
                let di = k as usize;
                if di == ci || self.clauses[di].deleted || self.clauses[ci].deleted {
                    continue;
                }
                if self.clauses[di].lits.len() < lits.len() || csig & !sigs[di] != 0 {
                    continue;
                }
                // Occurrence lists are hints (strengthening leaves stale
                // entries); the containment check tolerates them.
                match subsume_check(&lits, &self.clauses[di].lits) {
                    Sub::No => {}
                    Sub::Subsumes => {
                        self.delete_clause(di);
                        self.stats.clauses_subsumed += 1;
                    }
                    Sub::Strengthen(p) => {
                        self.strengthen_clause(di, !p, sigs);
                        if !self.ok {
                            return;
                        }
                        if !self.clauses[di].deleted {
                            queue.push(di as u32);
                        }
                    }
                }
            }
        }
    }

    /// Remove one literal from a clause (self-subsuming resolution step).
    /// Runs with watches down; a unit result is committed to the trail.
    fn strengthen_clause(&mut self, di: usize, drop: Lit, sigs: &mut [u64]) {
        let c = &mut self.clauses[di];
        let Some(pos) = c.lits.iter().position(|&l| l == drop) else {
            return;
        };
        c.lits.remove(pos);
        self.clause_bytes -= size_of::<Lit>();
        sigs[di] = clause_sig(&c.lits);
        self.stats.clauses_subsumed += 1;
        match self.clauses[di].lits.len() {
            0 => self.ok = false,
            1 => {
                let unit = self.clauses[di].lits[0];
                self.delete_clause(di);
                self.preprocess_unit(unit);
            }
            _ => {}
        }
    }

    /// Bounded variable elimination. A variable is eliminated when the set
    /// of non-tautological resolvents of its positive × negative occurrences
    /// is no larger than the clauses removed (plus the configured growth
    /// allowance) and no resolvent exceeds the length cap. The removed
    /// clauses go onto the elimination stack for model reconstruction and
    /// restore-on-reuse.
    fn bve_pass(
        &mut self,
        first: bool,
        occs: &mut [Vec<u32>],
        sigs: &mut Vec<u64>,
        budget: &Budget,
    ) {
        // Cheapest variables first: fewer occurrences means fewer and
        // shorter resolvents. Deterministic tie-break on the index.
        let mut cands: Vec<(usize, u32)> = (0..self.num_vars())
            .filter(|&i| {
                let v = Var(i as u32);
                (first || self.simp.touched[i])
                    && !self.simp.frozen[i]
                    && !self.simp.is_eliminated(v)
                    && self.value_var(v) == LBool::Undef
                    && !occs[i].is_empty()
            })
            .map(|i| (occs[i].len(), i as u32))
            .collect();
        cands.sort_unstable();

        for (step, &(_, vi)) in cands.iter().enumerate() {
            if step % POLL_INTERVAL == 0
                && (budget.interrupted() || failpoints::trip(SIMPLIFY_FAILPOINT).is_some())
            {
                return;
            }
            if budget.clause_bytes_exhausted(self.clause_bytes) {
                return;
            }
            let v = Var(vi);
            if self.value_var(v) != LBool::Undef {
                continue; // assigned by an earlier elimination's unit
            }
            // Partition the live occurrences by polarity, dropping stale
            // occurrence entries (deleted or strengthened clauses).
            let mut pos: Vec<u32> = Vec::new();
            let mut neg: Vec<u32> = Vec::new();
            for &ci in &occs[v.index()] {
                let c = &self.clauses[ci as usize];
                if c.deleted {
                    continue;
                }
                if c.lits.contains(&v.pos()) {
                    pos.push(ci);
                } else if c.lits.contains(&v.neg()) {
                    neg.push(ci);
                }
            }
            let total = pos.len() + neg.len();
            if total == 0 {
                continue; // unconstrained: leave it to the search
            }
            if pos.len() * neg.len() > self.simp.cfg.bve_occ_product {
                continue;
            }
            let limit = total + self.simp.cfg.bve_grow;
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut within_bounds = true;
            'gen: for &pi in &pos {
                for &ni in &neg {
                    let a = &self.clauses[pi as usize].lits;
                    let b = &self.clauses[ni as usize].lits;
                    if let Some(r) = resolve_on(a, b, v) {
                        if r.len() > self.simp.cfg.bve_max_resolvent_len
                            || resolvents.len() == limit
                        {
                            within_bounds = false;
                            break 'gen;
                        }
                        resolvents.push(r);
                    }
                }
            }
            if !within_bounds {
                continue;
            }
            // Commit: remove the occurrences, remember them, add resolvents.
            self.stats.vars_eliminated += 1;
            self.simp.eliminated[v.index()] = true;
            self.simp.active_elims += 1;
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(total);
            for &ci in pos.iter().chain(neg.iter()) {
                stored.push(self.clauses[ci as usize].lits.clone());
                self.delete_clause(ci as usize);
            }
            self.simp.elim_index[v.index()] = self.simp.elim_stack.len() as u32;
            self.simp.elim_stack.push(ElimRecord { var: v, clauses: stored, restored: false });
            for r in resolvents {
                match r.len() {
                    0 => {
                        self.ok = false;
                        return;
                    }
                    1 => {
                        self.preprocess_unit(r[0]);
                        if !self.ok {
                            return;
                        }
                    }
                    _ => {
                        let idx = self.clauses.len() as u32;
                        self.clause_bytes += r.len() * size_of::<Lit>();
                        sigs.push(clause_sig(&r));
                        for &l in &r {
                            occs[l.var().index()].push(idx);
                            // Neighbors became cheaper; revisit next pass.
                            self.simp.touched[l.var().index()] = true;
                        }
                        self.clauses.push(Clause::new(r, false, 0));
                    }
                }
            }
        }
    }

    /// Rebuild watches and re-close the clause set under level-0
    /// propagation after a preprocessing pass (units committed mid-pass sit
    /// unpropagated on the trail until here).
    fn finish_preprocess(&mut self) {
        // Learnt clauses over eliminated variables are deleted rather than
        // stored: they are implied, and the elimination stack must contain
        // exactly the defining (original) occurrences.
        if self.simp.active_elims > 0 {
            for i in 0..self.clauses.len() {
                let c = &self.clauses[i];
                if c.deleted || !c.learnt {
                    continue;
                }
                if c.lits.iter().any(|l| self.simp.eliminated[l.var().index()]) {
                    self.delete_clause(i);
                }
            }
        }
        if !self.ok {
            return;
        }
        self.rebuild_watches();
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        // Strip any newly falsified/satisfied literals, then propagate the
        // units that stripping may itself have produced.
        self.simplify_level0();
        if !self.ok {
            return;
        }
        self.rebuild_watches();
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Restore any eliminated variables mentioned by a new clause. Called by
    /// `add_clause` before the clause is processed.
    pub(super) fn restore_referenced(&mut self, lits: &[Lit]) {
        if self.simp.active_elims == 0 {
            return;
        }
        let needed: Vec<Var> =
            lits.iter().map(|l| l.var()).filter(|&v| self.simp.is_eliminated(v)).collect();
        if !needed.is_empty() {
            self.restore_vars(needed);
        }
    }

    /// Un-eliminate the given variables: re-add their stored clauses and
    /// return them to the branching order. Cascades through eliminated
    /// variables the stored clauses mention. Runs at decision level 0.
    fn restore_vars(&mut self, seed: Vec<Var>) {
        debug_assert_eq!(self.decision_level(), 0);
        // Phase 1: transitive closure, marking everything live first so the
        // re-adds in phase 2 cannot re-trigger restoration.
        let mut work = seed;
        let mut to_restore: Vec<u32> = Vec::new();
        while let Some(v) = work.pop() {
            let ri = self.simp.elim_index[v.index()];
            if ri == NO_RECORD {
                continue;
            }
            debug_assert!(!self.simp.elim_stack[ri as usize].restored);
            self.simp.elim_stack[ri as usize].restored = true;
            self.simp.eliminated[v.index()] = false;
            self.simp.elim_index[v.index()] = NO_RECORD;
            self.simp.active_elims -= 1;
            self.simp.touched[v.index()] = true;
            self.order.insert(v, &self.activity);
            to_restore.push(ri);
            for ci in 0..self.simp.elim_stack[ri as usize].clauses.len() {
                for li in 0..self.simp.elim_stack[ri as usize].clauses[ci].len() {
                    let l = self.simp.elim_stack[ri as usize].clauses[ci][li];
                    if self.simp.eliminated[l.var().index()] {
                        work.push(l.var());
                    }
                }
            }
        }
        // Phase 2: re-add the defining clauses through the normal level-0
        // path (handles satisfied/falsified literals and unit propagation).
        for ri in to_restore {
            let clauses = std::mem::take(&mut self.simp.elim_stack[ri as usize].clauses);
            for cl in clauses {
                if !self.add_clause(&cl) {
                    return;
                }
            }
        }
    }

    /// Davis–Putnam model reconstruction: give every eliminated variable
    /// the polarity that satisfies its removed clauses. Replayed newest-
    /// first because a record's clauses may mention variables eliminated
    /// before it (never after — elimination removes all occurrences).
    pub(super) fn extend_model(&mut self) {
        for ri in (0..self.simp.elim_stack.len()).rev() {
            if self.simp.elim_stack[ri].restored {
                continue;
            }
            let v = self.simp.elim_stack[ri].var;
            let mut val = false;
            'clauses: for cl in &self.simp.elim_stack[ri].clauses {
                let mut positive = false;
                let mut satisfied_without_v = false;
                for &l in cl {
                    if l.var() == v {
                        positive = l.is_positive();
                    } else if self.model_lit(l) {
                        satisfied_without_v = true;
                    }
                }
                // A positive-occurrence clause with every other literal
                // false forces v true; the BVE resolvent closure guarantees
                // no negative-occurrence clause then breaks.
                if positive && !satisfied_without_v {
                    val = true;
                    break 'clauses;
                }
            }
            self.model[v.index()] = LBool::from_bool(val);
        }
    }

    /// One vivification round: walk the clause arena from a rotating cursor
    /// under a propagation ticket, asserting each clause's negation literal
    /// by literal to find implied/conflicting prefixes that shorten it.
    /// Runs at decision level 0 between restarts.
    pub(super) fn vivify_round(&mut self, budget: &Budget) {
        debug_assert_eq!(self.decision_level(), 0);
        if failpoints::trip(SIMPLIFY_FAILPOINT).is_some() {
            return;
        }
        // Probing rewrites clauses that stale level-0 reasons could
        // reference; drop them (they are never dereferenced again).
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        let n = self.clauses.len();
        if n == 0 {
            return;
        }
        let start_props = self.stats.propagations;
        let mut examined = 0usize;
        while examined < n {
            if self.stats.propagations - start_props >= self.simp.cfg.viv_propagation_ticket
                || budget.interrupted()
            {
                break;
            }
            let i = self.simp.viv_cursor % n;
            self.simp.viv_cursor = self.simp.viv_cursor.wrapping_add(1) % n.max(1);
            examined += 1;
            {
                let c = &self.clauses[i];
                if c.deleted || c.lits.len() < 3 || c.lits.len() > self.simp.cfg.viv_max_clause_len
                {
                    continue;
                }
            }
            if !self.vivify_clause(i) || !self.ok {
                break;
            }
        }
        self.cancel_until(0);
    }

    /// Vivify one clause; returns `false` when the round should stop
    /// (cancellation tripped mid-probe). The clause is detached during
    /// probing so propagation cannot use it to justify its own literals.
    fn vivify_clause(&mut self, i: usize) -> bool {
        let lits = self.clauses[i].lits.clone();
        self.detach_clause(i);
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut satisfied_at_level0 = false;
        for &l in &lits {
            match self.value(l) {
                LBool::True => {
                    if self.decision_level() == 0 {
                        // Satisfied forever; the clause is garbage.
                        satisfied_at_level0 = true;
                    } else {
                        // ¬(kept) propagated l: `kept ∨ l` is implied and
                        // subsumes the original clause.
                        kept.push(l);
                    }
                    break;
                }
                // ¬(kept) propagated ¬l (or l is false at level 0): l is
                // redundant in this clause.
                LBool::False => {}
                LBool::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.assign(!l, None);
                    if self.propagate().is_some() {
                        // ¬(kept ∨ l) is contradictory: `kept ∨ l` is
                        // implied and replaces the clause.
                        kept.push(l);
                        break;
                    }
                    if self.interrupted {
                        self.cancel_until(0);
                        self.attach_clause(i);
                        return false;
                    }
                    kept.push(l);
                }
            }
        }
        self.cancel_until(0);
        if satisfied_at_level0 {
            self.delete_clause(i);
            return true;
        }
        if kept.len() == lits.len() {
            self.attach_clause(i);
            return true;
        }
        self.stats.clauses_vivified += 1;
        match kept.len() {
            0 => {
                self.delete_clause(i);
                self.ok = false;
            }
            1 => {
                let unit = kept[0];
                self.delete_clause(i);
                match self.value(unit) {
                    LBool::True => {}
                    LBool::False => self.ok = false,
                    LBool::Undef => {
                        self.assign(unit, None);
                        if self.propagate().is_some() {
                            self.ok = false;
                        }
                    }
                }
            }
            _ => {
                let dropped = lits.len() - kept.len();
                self.clause_bytes -= dropped * size_of::<Lit>();
                self.clauses[i].lits = kept;
                self.attach_clause(i);
            }
        }
        true
    }

    /// Remove the two watcher entries of clause `i`.
    fn detach_clause(&mut self, i: usize) {
        let cref = ClauseRef(i as u32);
        let (w0, w1) = {
            let c = &self.clauses[i];
            ((!c.lits[0]).index(), (!c.lits[1]).index())
        };
        self.watches[w0].retain(|w| w.cref != cref);
        self.watches[w1].retain(|w| w.cref != cref);
    }

    /// Watch the first two literals of clause `i`.
    fn attach_clause(&mut self, i: usize) {
        let cref = ClauseRef(i as u32);
        let (l0, l1) = (self.clauses[i].lits[0], self.clauses[i].lits[1]);
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }
}

// Public configuration / inspection surface.
impl Solver {
    /// Replace the pre/inprocessing configuration. Takes effect at the next
    /// solve; variables already eliminated stay eliminated (they restore
    /// lazily if referenced again).
    pub fn set_simplify_config(&mut self, cfg: SimplifyConfig) {
        self.simp.cfg = cfg;
    }

    /// The active pre/inprocessing configuration.
    pub fn simplify_config(&self) -> &SimplifyConfig {
        &self.simp.cfg
    }

    /// Exempt `v` from variable elimination. Incremental clients freeze
    /// interface variables they will mention in later clauses or
    /// assumptions; referencing a non-frozen eliminated variable is still
    /// sound (restore-on-reuse) but pays the restoration.
    pub fn freeze_var(&mut self, v: Var) {
        self.simp.frozen[v.index()] = true;
    }

    /// Has `v` been eliminated by preprocessing (and not restored)?
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.simp.is_eliminated(v)
    }

    /// Number of currently-eliminated variables.
    pub fn num_eliminated(&self) -> usize {
        self.simp.active_elims
    }

    /// A satisfying assignment must satisfy the *defining* clauses of
    /// eliminated variables too; the differential suite uses this to prove
    /// model reconstruction correct. Returns `true` when every stored
    /// elimination clause evaluates true under the current model.
    pub fn model_satisfies_eliminated(&self) -> bool {
        self.simp
            .elim_stack
            .iter()
            .filter(|r| !r.restored)
            .all(|r| r.clauses.iter().all(|cl| cl.iter().any(|&l| self.model_lit(l))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::solver::SolveResult;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// Preprocess at solve entry rather than after the conflict-count
    /// deferral — these instances are trivial and would never reach the
    /// default `preprocess_min_conflicts` threshold.
    fn eager() -> SimplifyConfig {
        SimplifyConfig { preprocess_min_conflicts: 0, ..SimplifyConfig::default() }
    }

    /// Tseitin AND-gate chain: BVE should eliminate the internal gate
    /// variables and reconstruction must still produce a model of the
    /// original clauses.
    #[test]
    fn bve_eliminates_and_reconstructs() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 6);
        // g_i <-> a_i & b_i over three gates, then require all outputs.
        for i in 0..2 {
            let (a, b, g) = (v[i], v[i + 2], v[i + 4]);
            s.add_clause(&[g.neg(), a.pos()]);
            s.add_clause(&[g.neg(), b.pos()]);
            s.add_clause(&[g.pos(), a.neg(), b.neg()]);
        }
        s.add_clause(&[v[4].pos(), v[5].pos()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.stats().vars_eliminated > 0, "BVE should fire on gate variables");
        // Some output is true, and its AND semantics hold in the model.
        let g_true = if s.model_value(v[4]) { 0 } else { 1 };
        assert!(s.model_value(v[4 + g_true]));
        assert!(s.model_value(v[g_true]) && s.model_value(v[g_true + 2]));
        assert!(s.model_satisfies_eliminated());
    }

    /// Adding a clause over an eliminated variable restores it and stays
    /// sound: the combined formula's satisfiability is decided correctly.
    #[test]
    fn restore_on_reuse_add_clause() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 3);
        // x <-> a & b, nothing else constrains x: x is eliminated.
        let (a, b, x) = (v[0], v[1], v[2]);
        s.add_clause(&[x.neg(), a.pos()]);
        s.add_clause(&[x.neg(), b.pos()]);
        s.add_clause(&[x.pos(), a.neg(), b.neg()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        // Now force x true and a false: must be Unsat (x -> a).
        assert!(s.add_clause(&[x.pos()]));
        let r1 = s.add_clause(&[a.neg()]);
        let result = s.solve(&Budget::unlimited());
        assert!(!r1 || result == SolveResult::Unsat);
    }

    /// Assuming an eliminated variable restores it; flipping the assumption
    /// flips the answer.
    #[test]
    fn restore_on_reuse_assumption() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 3);
        let (a, b, x) = (v[0], v[1], v[2]);
        s.add_clause(&[x.neg(), a.pos()]);
        s.add_clause(&[x.neg(), b.pos()]);
        s.add_clause(&[x.pos(), a.neg(), b.neg()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert_eq!(s.solve_with(&[x.pos(), a.neg()], &Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[x.pos()], &Budget::unlimited()), SolveResult::Sat);
        assert!(s.model_value(a) && s.model_value(b) && s.model_value(x));
    }

    /// Frozen variables are never eliminated.
    #[test]
    fn frozen_vars_survive() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 3);
        s.freeze_var(v[2]);
        s.add_clause(&[v[2].neg(), v[0].pos()]);
        s.add_clause(&[v[2].neg(), v[1].pos()]);
        s.add_clause(&[v[2].pos(), v[0].neg(), v[1].neg()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(!s.is_eliminated(v[2]));
    }

    /// Duplicate and superset clauses are removed by subsumption; a
    /// one-flipped-literal pair is strengthened.
    #[test]
    fn subsumption_and_strengthening() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let cfg = SimplifyConfig { bve: false, ..eager() };
        s.set_simplify_config(cfg);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[0].pos(), v[1].pos(), v[2].pos()]); // subsumed
        s.add_clause(&[v[0].pos(), v[1].neg(), v[3].pos()]); // strengthened on v1
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.stats().clauses_subsumed >= 2, "stats: {:?}", s.stats());
    }

    /// The simplify failpoint aborts preprocessing without affecting the
    /// answer and without leaving the solver inconsistent.
    #[test]
    fn simplify_failpoint_aborts_cleanly() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        s.add_clause(&[v[2].neg(), v[3].pos()]);
        failpoints::arm("sat::simplify", failpoints::Fault::BudgetExhausted);
        let r = s.solve(&Budget::unlimited());
        failpoints::disarm("sat::simplify");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.stats().vars_eliminated, 0, "pass must have been aborted");
        // Disarmed: the next solve preprocesses normally.
        assert!(s.add_clause(&[v[3].neg(), v[0].pos()]));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
    }

    /// With simplification disabled the solver behaves exactly like the
    /// textbook version (no eliminations, no vivification).
    #[test]
    fn disabled_config_is_inert() {
        let mut s = Solver::new();
        s.set_simplify_config(SimplifyConfig::off());
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        let st = s.stats();
        assert_eq!(st.vars_eliminated, 0);
        assert_eq!(st.clauses_subsumed, 0);
        assert_eq!(st.clauses_vivified, 0);
    }

    /// Aggressive vivification (every restart) over a conflict-heavy
    /// instance must not change the answer: rounds rotate over originals
    /// and learnts, shrinking or deleting them mid-search.
    #[test]
    fn vivification_preserves_answers() {
        let mut s = Solver::new();
        s.set_simplify_config(SimplifyConfig {
            bve: false,
            subsumption: false,
            viv_conflict_period: 1,
            ..SimplifyConfig::default()
        });
        let n = 6;
        let m = 5;
        let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }

    /// Unsatisfiability discovered entirely inside preprocessing is
    /// reported as Unsat, not an inconsistent state.
    #[test]
    fn preprocessing_derives_unsat() {
        let mut s = Solver::new();
        s.set_simplify_config(eager());
        let v = vars(&mut s, 2);
        // (a∨b) (a∨¬b) (¬a∨b) (¬a∨¬b) — BVE/strengthening alone can refute.
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[0].pos(), v[1].neg()]);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[0].neg(), v[1].neg()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }
}
