//! Resource budgets: the verifier's analogue of the paper's five-minute
//! SMT timeout ("T.O" in Tables II/III).

use std::time::{Duration, Instant};

/// Limits on a single `solve` call. Exceeding any limit yields
/// [`crate::SolveResult::Unknown`].
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum number of conflicts, if any.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations, if any.
    pub max_propagations: Option<u64>,
    /// Wall-clock deadline, if any.
    pub deadline: Option<Instant>,
}

impl Budget {
    /// No limits: run to completion.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Wall-clock limit measured from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget { deadline: Some(Instant::now() + timeout), ..Budget::default() }
    }

    /// Conflict-count limit.
    pub fn with_conflicts(max: u64) -> Budget {
        Budget { max_conflicts: Some(max), ..Budget::default() }
    }

    /// Add a wall-clock limit to an existing budget.
    pub fn and_timeout(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// True when the counters exceed any configured limit.
    /// The deadline is only consulted here, so callers should invoke this at a
    /// coarse cadence (e.g. per conflict) to keep `Instant::now` off hot paths.
    pub fn exhausted(&self, conflicts: u64, propagations: u64) -> bool {
        if let Some(m) = self.max_conflicts {
            if conflicts >= m {
                return true;
            }
        }
        if let Some(m) = self.max_propagations {
            if propagations >= m {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX, u64::MAX));
    }

    #[test]
    fn conflict_limit() {
        let b = Budget::with_conflicts(10);
        assert!(!b.exhausted(9, 0));
        assert!(b.exhausted(10, 0));
    }

    #[test]
    fn deadline_in_past_exhausts() {
        let b = Budget { deadline: Some(Instant::now() - Duration::from_secs(1)), ..Budget::default() };
        assert!(b.exhausted(0, 0));
    }
}
