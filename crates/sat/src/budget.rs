//! Resource budgets and cooperative cancellation: the verifier's analogue
//! of the paper's five-minute SMT timeout ("T.O" in Tables II/III), extended
//! into a full resilience contract — wall clock, search-effort caps, memory
//! caps and an external kill switch — shared by every layer of the pipeline
//! (rewriting, bit-blasting, CDCL search).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation token. Cloning shares the flag: any holder can
/// [`cancel`](CancelToken::cancel) a solve running on another thread, and
/// the solver observes it at propagation / bit-blast granularity, yielding
/// `Unknown` promptly instead of running to completion.
///
/// Tokens form a *tree*: [`child`](CancelToken::child) derives a token that
/// trips when either itself or any ancestor is cancelled, while cancelling
/// the child leaves the parent — and every sibling — untouched. This is the
/// isolation contract portfolio racing relies on: one rung exhausting its
/// budget must never take a concurrently racing sibling down with it, yet
/// a supervisor holding the root can still stop the whole portfolio.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Ancestor chain, innermost parent first. Kept flat (rather than a
    /// recursive parent link) so `is_cancelled` is a short loop of atomic
    /// loads with no pointer chasing through nested Arcs.
    ancestors: Arc<[Arc<AtomicBool>]>,
}

impl CancelToken {
    /// Fresh, untripped root token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Derive a child token: tripped by its own [`cancel`](CancelToken::cancel)
    /// *or* by cancelling `self` (or any ancestor of `self`); cancelling the
    /// child never affects `self` or the child's siblings.
    pub fn child(&self) -> CancelToken {
        let mut chain = vec![Arc::clone(&self.flag)];
        chain.extend(self.ancestors.iter().cloned());
        CancelToken { flag: Arc::new(AtomicBool::new(false)), ancestors: chain.into() }
    }

    /// Trip the token (and, transitively, every descendant). Idempotent;
    /// safe from any thread. Ancestors and siblings are unaffected.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has this token — or any ancestor — been tripped?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
            || self.ancestors.iter().any(|a| a.load(Ordering::Acquire))
    }

    /// Reset this token's own flag to untripped (for token reuse between
    /// runs in tests/harnesses). A cancellation inherited from an ancestor
    /// cannot be reset from the child.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Limits on a single `solve` call. Exceeding any limit yields
/// [`crate::SolveResult::Unknown`].
///
/// Also exported as `ResourceBudget`: beyond the original search-effort
/// limits it caps *memory* (clause-database bytes, hash-consed term count)
/// and carries a [`CancelToken`] for external aborts.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum number of conflicts, if any.
    pub max_conflicts: Option<u64>,
    /// Maximum number of unit propagations, if any.
    pub max_propagations: Option<u64>,
    /// Wall-clock deadline, if any.
    pub deadline: Option<Instant>,
    /// Cap on the SAT clause database, in bytes of literal storage
    /// (original + learnt). Exceeding it yields `Unknown` — the analogue
    /// of a solver memory-out.
    pub max_clause_bytes: Option<usize>,
    /// Cap on hash-consed term nodes in the SMT context. Checked by the
    /// rewriting/array-elimination loops, which can blow up the DAG long
    /// before the SAT solver starts.
    pub max_term_nodes: Option<usize>,
    /// External cancellation. Default token is never tripped.
    pub cancel: CancelToken,
}

/// The full resilience contract: `Budget` plus memory caps and
/// cancellation. (Alias — the two names refer to the same struct.)
pub type ResourceBudget = Budget;

impl Budget {
    /// No limits: run to completion.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Wall-clock limit measured from now.
    pub fn with_timeout(timeout: Duration) -> Budget {
        Budget { deadline: Some(Instant::now() + timeout), ..Budget::default() }
    }

    /// Conflict-count limit.
    pub fn with_conflicts(max: u64) -> Budget {
        Budget { max_conflicts: Some(max), ..Budget::default() }
    }

    /// Add a wall-clock limit to an existing budget.
    pub fn and_timeout(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Add a clause-database byte cap to an existing budget.
    pub fn and_clause_bytes(mut self, bytes: usize) -> Budget {
        self.max_clause_bytes = Some(bytes);
        self
    }

    /// Add a term-node cap to an existing budget.
    pub fn and_term_nodes(mut self, nodes: usize) -> Budget {
        self.max_term_nodes = Some(nodes);
        self
    }

    /// Attach a cancellation token to an existing budget.
    pub fn and_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// True when the counters exceed any configured limit, the deadline has
    /// passed, or the token was tripped.
    /// The deadline is only consulted here, so callers should invoke this at
    /// a coarse cadence (e.g. per conflict) to keep `Instant::now` off hot
    /// paths; the cancellation check is a single atomic load and is also
    /// consulted on the finer-grained [`interrupted`](Budget::interrupted)
    /// path.
    pub fn exhausted(&self, conflicts: u64, propagations: u64) -> bool {
        if let Some(m) = self.max_conflicts {
            if conflicts >= m {
                return true;
            }
        }
        if let Some(m) = self.max_propagations {
            if propagations >= m {
                return true;
            }
        }
        self.interrupted()
    }

    /// Deadline-or-cancellation check, for loops that have no conflict /
    /// propagation counters (bit-blasting, rewriting, extraction).
    #[inline]
    pub fn interrupted(&self) -> bool {
        if self.cancel.is_cancelled() {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// True when the clause database outgrew its byte cap.
    #[inline]
    pub fn clause_bytes_exhausted(&self, bytes: usize) -> bool {
        matches!(self.max_clause_bytes, Some(m) if bytes >= m)
    }

    /// True when the term DAG outgrew its node cap.
    #[inline]
    pub fn term_nodes_exhausted(&self, nodes: usize) -> bool {
        matches!(self.max_term_nodes, Some(m) if nodes >= m)
    }

    /// Remaining wall-clock time, if a deadline is set. `Duration::ZERO`
    /// once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Split into `k` *independent* per-worker budgets for concurrent use.
    ///
    /// Handing one `Budget` value to `k` racing workers is wrong in two
    /// ways: each worker checks its own counters against the shared caps
    /// (so the aggregate spend is `k`× what the caps suggest — the
    /// "shared-and-double-counted" trap), and they share one cancel token,
    /// so one worker exhausting its slice trips every sibling. `split`
    /// fixes both: each child carries the same per-worker caps and deadline
    /// but its own [`CancelToken::child`] — cancelling (or exhausting) one
    /// child never interrupts a sibling, while cancelling the original
    /// budget's token still stops all of them.
    pub fn split(&self, k: usize) -> Vec<Budget> {
        (0..k).map(|_| Budget { cancel: self.cancel.child(), ..self.clone() }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX, u64::MAX));
        assert!(!b.interrupted());
        assert!(!b.clause_bytes_exhausted(usize::MAX));
        assert!(!b.term_nodes_exhausted(usize::MAX));
    }

    #[test]
    fn conflict_limit() {
        let b = Budget::with_conflicts(10);
        assert!(!b.exhausted(9, 0));
        assert!(b.exhausted(10, 0));
    }

    #[test]
    fn deadline_in_past_exhausts() {
        let b = Budget { deadline: Some(Instant::now() - Duration::from_secs(1)), ..Budget::default() };
        assert!(b.exhausted(0, 0));
        assert!(b.interrupted());
    }

    #[test]
    fn cancellation_trips_everywhere() {
        let b = Budget::unlimited();
        assert!(!b.interrupted());
        b.cancel.cancel();
        assert!(b.interrupted());
        assert!(b.exhausted(0, 0));
        b.cancel.reset();
        assert!(!b.interrupted());
    }

    #[test]
    fn token_is_shared_across_clones() {
        let token = CancelToken::new();
        let b = Budget::unlimited().and_cancel(token.clone());
        let b2 = b.clone();
        token.cancel();
        assert!(b.interrupted());
        assert!(b2.interrupted());
    }

    #[test]
    fn memory_caps() {
        let b = Budget::unlimited().and_clause_bytes(1024).and_term_nodes(10);
        assert!(!b.clause_bytes_exhausted(1023));
        assert!(b.clause_bytes_exhausted(1024));
        assert!(!b.term_nodes_exhausted(9));
        assert!(b.term_nodes_exhausted(10));
    }

    #[test]
    fn child_token_isolation() {
        let root = CancelToken::new();
        let a = root.child();
        let b = root.child();
        // Sibling cancellation is isolated.
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled(), "cancelling a child must not trip its sibling");
        assert!(!root.is_cancelled(), "cancelling a child must not trip the parent");
        // Root cancellation reaches every descendant, including grandchildren.
        let grandchild = b.child();
        root.cancel();
        assert!(b.is_cancelled());
        assert!(grandchild.is_cancelled());
        // A child cannot un-cancel an ancestor's trip.
        b.reset();
        assert!(b.is_cancelled());
    }

    #[test]
    fn split_isolates_siblings_and_keeps_caps() {
        let root = CancelToken::new();
        let parent = Budget::unlimited()
            .and_cancel(root.clone())
            .and_clause_bytes(4096)
            .and_term_nodes(100);
        let children = parent.split(3);
        assert_eq!(children.len(), 3);
        for c in &children {
            // Per-worker caps are the sequential per-attempt caps, verbatim.
            assert_eq!(c.max_clause_bytes, Some(4096));
            assert_eq!(c.max_term_nodes, Some(100));
            assert!(!c.interrupted());
        }
        // Exhausting (cancelling) one child leaves the siblings running.
        children[0].cancel.cancel();
        assert!(children[0].interrupted());
        assert!(!children[1].interrupted());
        assert!(!children[2].interrupted());
        assert!(!parent.interrupted());
        // The parent token remains the portfolio-wide kill switch.
        root.cancel();
        assert!(children[1].interrupted() && children[2].interrupted());
    }

    #[test]
    fn remaining_time_saturates() {
        let b = Budget { deadline: Some(Instant::now() - Duration::from_secs(1)), ..Budget::default() };
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        assert_eq!(Budget::unlimited().remaining(), None);
    }
}
