//! DIMACS CNF parsing and printing — used by tests and the solver benches.

use crate::types::{Lit, Var};

/// A CNF formula in DIMACS form.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Parse DIMACS text. Accepts comments (`c …`) and a `p cnf V C` header;
    /// the header is optional (variable count is then inferred).
    pub fn parse(text: &str) -> Result<Cnf, String> {
        let mut cnf = Cnf::default();
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut it = rest.split_whitespace();
                match it.next() {
                    Some("cnf") => {}
                    other => return Err(format!("unsupported problem type {other:?}")),
                }
                cnf.num_vars = it
                    .next()
                    .ok_or("missing variable count")?
                    .parse::<usize>()
                    .map_err(|e| e.to_string())?;
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok.parse().map_err(|e| format!("bad literal {tok:?}: {e}"))?;
                if n == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let var = Var((n.unsigned_abs() - 1) as u32);
                    cnf.num_vars = cnf.num_vars.max(var.index() + 1);
                    current.push(Lit::new(var, n > 0));
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }

    /// Render as DIMACS text.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let n = (l.var().0 + 1) as i64;
                if l.is_positive() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str(&(-n).to_string());
                }
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Load this CNF into a solver, allocating its variables.
    pub fn load(&self, solver: &mut crate::Solver) -> bool {
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for c in &self.clauses {
            if !solver.add_clause(c) {
                return false;
            }
        }
        true
    }

    /// Evaluate under a full assignment (`assignment[v]` = value of var v).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Budget, SolveResult, Solver};

    #[test]
    fn parse_roundtrip() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = Cnf::parse(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let again = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn parse_without_header() {
        let cnf = Cnf::parse("1 2 0\n-1 0").unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses.len(), 2);
    }

    #[test]
    fn solve_loaded_cnf() {
        let cnf = Cnf::parse("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = Solver::new();
        assert!(cnf.load(&mut s));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        let assignment: Vec<bool> = (0..2).map(|i| s.model_value(Var(i))).collect();
        assert!(cnf.eval(&assignment));
    }

    #[test]
    fn export_roundtrip_with_eliminated_gaps() {
        // Var 2 occurs only as (x ∨ a)(¬x ∨ b): BVE resolves it away, so the
        // exported CNF has a variable-index gap. The round-tripped formula
        // must stay equisatisfiable, and the preprocessed solver's
        // *reconstructed* model must still satisfy the exported clauses.
        let text = "p cnf 4 4\n3 1 0\n-3 2 0\n1 -2 0\n-1 4 0\n";
        let cnf = Cnf::parse(text).unwrap();
        let mut s = Solver::new();
        // Preprocess at solve entry: this instance is decided long before
        // the default conflict-count deferral would run a pass.
        s.set_simplify_config(crate::SimplifyConfig {
            preprocess_min_conflicts: 0,
            ..crate::SimplifyConfig::default()
        });
        assert!(cnf.load(&mut s));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.num_eliminated() > 0, "expected BVE to eliminate var 2");

        let exported = s.export_cnf();
        assert_eq!(exported.num_vars, 4, "gaps keep the variable space intact");
        let mentioned: std::collections::HashSet<u32> = exported
            .clauses
            .iter()
            .flatten()
            .map(|l| l.var().0)
            .collect();
        assert!(mentioned.len() < 4, "some variable no longer occurs");

        // Textual round-trip: clause-for-clause identical after parsing.
        // (The header keeps num_vars despite the gap.)
        let again = Cnf::parse(&exported.to_dimacs()).unwrap();
        assert_eq!(exported.clauses, again.clauses);
        assert_eq!(again.num_vars, 4);

        // Equisatisfiable: a fresh solver on the exported CNF agrees.
        let mut s2 = Solver::new();
        assert!(again.load(&mut s2));
        assert_eq!(s2.solve(&Budget::unlimited()), SolveResult::Sat);

        // The original's extended model satisfies the exported clauses too.
        let model: Vec<bool> = (0..4).map(|i| s.model_value(Var(i))).collect();
        assert!(exported.eval(&model));
        assert!(cnf.eval(&model), "reconstruction covers the eliminated var");
    }

    #[test]
    fn export_roundtrip_unit_only_instance() {
        let cnf = Cnf::parse("p cnf 3 3\n1 0\n-2 0\n3 0\n").unwrap();
        let mut s = Solver::new();
        assert!(cnf.load(&mut s));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        let exported = s.export_cnf();
        // Level-0 assignments come back out as unit clauses.
        assert!(exported.clauses.iter().all(|c| c.len() == 1));
        let again = Cnf::parse(&exported.to_dimacs()).unwrap();
        assert_eq!(exported, again);
        let model: Vec<bool> = (0..3).map(|i| s.model_value(Var(i))).collect();
        assert!(again.eval(&model));
        assert!(model[0] && !model[1] && model[2]);
    }

    #[test]
    fn empty_clause_roundtrip_is_unsat() {
        let cnf = Cnf::parse("p cnf 2 1\n0\n").unwrap();
        assert_eq!(cnf.clauses, vec![Vec::<Lit>::new()]);
        let again = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(cnf.clauses, again.clauses);
        let mut s = Solver::new();
        assert!(!cnf.load(&mut s), "empty clause makes add_clause fail");
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }
}
