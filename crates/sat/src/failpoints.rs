//! Hand-rolled fault-injection hooks ("failpoints").
//!
//! The resilience layer must be testable: the integration suite needs to
//! *force* a solver panic, a budget exhaustion, or a spurious `Unknown` at a
//! named site and then prove the runner survives. External failpoint crates
//! are off the table (offline builds), so this is a minimal registry:
//!
//! * [`arm`]`("site", Fault::Panic)` makes the next [`check`]`("site")`
//!   report the fault (sticky until [`disarm`]ed);
//! * instrumented sites call [`check`] and act on the returned fault;
//! * the fast path for unarmed processes is a single relaxed atomic load —
//!   effectively free, which is why the hooks are compiled unconditionally
//!   instead of hiding behind a cargo feature (they are then also *tested*
//!   unconditionally).
//!
//! Sites are plain strings namespaced by layer (`sat::solve`,
//! `smt::check`, `runner::param`, `bench::cell`, …). Tests that arm global
//! state must use distinct sites (or serialize) since the registry is
//! process-wide.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The faults a site can be armed with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Behave as if the resource budget was just exhausted.
    BudgetExhausted,
    /// Return an `Unknown`/indeterminate answer even though resources
    /// remain (exercises the degradation ladder's escalation path).
    SpuriousUnknown,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, HashMap<String, Fault>> {
    static REG: OnceLock<Mutex<HashMap<String, Fault>>> = OnceLock::new();
    // Poison recovery: an armed `Fault::Panic` unwinds through call stacks
    // that may hold this lock's caller frames; the map itself is never
    // left mid-mutation, so the guard stays valid.
    REG.get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arm `site` with `fault`. Sticky until [`disarm`]/[`reset`].
pub fn arm(site: &str, fault: Fault) {
    registry().insert(site.to_string(), fault);
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarm one site.
pub fn disarm(site: &str) {
    let mut reg = registry();
    reg.remove(site);
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::Release);
    }
}

/// Disarm every site.
pub fn reset() {
    registry().clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// The fault armed at `site`, if any. Near-zero cost while nothing is
/// armed anywhere in the process.
#[inline]
pub fn check(site: &str) -> Option<Fault> {
    if !ANY_ARMED.load(Ordering::Acquire) {
        return None;
    }
    registry().get(site).copied()
}

/// Convenience for sites whose only response to [`Fault::Panic`] is to
/// panic; returns the remaining fault kinds for the caller to interpret.
#[inline]
pub fn trip(site: &str) -> Option<Fault> {
    match check(site) {
        Some(Fault::Panic) => panic!("failpoint `{site}` armed with Fault::Panic"),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_is_none() {
        assert_eq!(check("tests::nowhere"), None);
    }

    #[test]
    fn arm_check_disarm_cycle() {
        arm("tests::cycle", Fault::SpuriousUnknown);
        assert_eq!(check("tests::cycle"), Some(Fault::SpuriousUnknown));
        // sticky until disarmed
        assert_eq!(check("tests::cycle"), Some(Fault::SpuriousUnknown));
        disarm("tests::cycle");
        assert_eq!(check("tests::cycle"), None);
    }

    #[test]
    #[should_panic(expected = "failpoint `tests::boom`")]
    fn trip_panics_on_panic_fault() {
        arm("tests::boom", Fault::Panic);
        // Disarm even though we panic: keep the registry clean for siblings.
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                disarm("tests::boom");
            }
        }
        let _g = Guard;
        let _ = trip("tests::boom");
    }
}
