//! Bounded learnt-clause exchange between pooled solver replicas.
//!
//! Obligation-parallel verification forks one solver replica per pool
//! member from a committed shared prefix. The replicas then solve
//! *different* goal deltas, but most of their search effort goes into the
//! same prefix CNF — so a short learnt clause over prefix variables derived
//! by one member is a valid (and often useful) lemma for every other
//! member. This module is the conduit:
//!
//! * [`LearntRing`] — a bounded, mutex-guarded ring the members share.
//!   Publishing appends (evicting the oldest entries past capacity) and
//!   collection is cursor-based: each member remembers the sequence number
//!   it has consumed up to and skips its own entries.
//! * [`Exchange`] — the per-member view: ring handle, member id, the
//!   **prefix variable high-water mark** and length cap that gate what may
//!   be exported, the collection cursor, and a pending buffer flushed at
//!   restart boundaries.
//!
//! Soundness (see `DESIGN.md` §5): only clauses whose literals all lie
//! below the prefix high-water mark may cross sessions. Goal deltas are
//! asserted under fresh assumption-guard variables allocated *after* the
//! replica forked, so any learnt clause involving a goal (directly or via
//! its guard) contains a literal at or above the mark and is filtered out.
//! What remains is a consequence of the shared prefix plus retired-guard
//! units — and retiring a guard `¬g` is satisfiability-preserving over
//! prefix variables (a fresh `g` occurs only in `¬g ∨ l` clauses), so a
//! prefix-only learnt is a consequence of the prefix alone and sound to
//! assert in every replica.
//!
//! Importing happens strictly at restart boundaries (decision level 0) via
//! `Solver::import_learnt`, which restores BVE-eliminated variables first
//! ("restore-on-reuse") so preprocessing state in the importer stays sound.

use crate::types::Lit;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default bound on ring entries; past it the oldest lemmas are dropped.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Default cap on exported clause length: long learnts rarely transfer.
pub const DEFAULT_EXPORT_MAX_LEN: usize = 8;

struct Entry {
    seq: u64,
    source: usize,
    lits: Arc<[Lit]>,
}

struct RingInner {
    entries: VecDeque<Entry>,
    /// Sequence number the *next* published entry will get.
    next_seq: u64,
    capacity: usize,
}

/// The shared, bounded lemma ring. Cheap to clone the `Arc` around it;
/// all member traffic funnels through one mutex, which is fine because
/// members only touch it at restart boundaries (every ~100+ conflicts).
pub struct LearntRing {
    inner: Mutex<RingInner>,
    exported: AtomicU64,
    imported: AtomicU64,
}

fn recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking publisher cannot leave the ring mid-mutation (pushes and
    // pops are the only writes), so the poisoned guard stays valid.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl LearntRing {
    pub fn new(capacity: usize) -> LearntRing {
        LearntRing {
            inner: Mutex::new(RingInner {
                entries: VecDeque::new(),
                next_seq: 0,
                capacity,
            }),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
        }
    }

    /// Publish one eligible learnt clause from `source`.
    pub fn publish(&self, source: usize, lits: &[Lit]) {
        let mut inner = recover(&self.inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push_back(Entry { seq, source, lits: lits.into() });
        while inner.entries.len() > inner.capacity {
            inner.entries.pop_front();
        }
        self.exported.fetch_add(1, Ordering::Relaxed);
    }

    /// Collect every entry published since `last_seen` by a member other
    /// than `member`, appending to `out`; returns the new cursor.
    pub fn collect_since(&self, member: usize, last_seen: u64, out: &mut Vec<Arc<[Lit]>>) -> u64 {
        let inner = recover(&self.inner);
        for e in &inner.entries {
            if e.seq >= last_seen && e.source != member {
                out.push(e.lits.clone());
            }
        }
        inner.next_seq
    }

    /// Count `n` clauses as actually attached by an importer.
    pub fn note_imported(&self, n: u64) {
        self.imported.fetch_add(n, Ordering::Relaxed);
    }

    /// Total clauses published across all members.
    pub fn exported(&self) -> u64 {
        self.exported.load(Ordering::Relaxed)
    }

    /// Total clauses attached by importers (tautologies, satisfied and
    /// own-source entries do not count).
    pub fn imported(&self) -> u64 {
        self.imported.load(Ordering::Relaxed)
    }
}

/// One pool member's connection to the ring. Attached to a `Solver` via
/// `set_exchange`; the solver exports at learn sites (filtered by
/// `max_var`/`max_len`) and runs an exchange round at restart boundaries.
#[derive(Clone)]
pub struct Exchange {
    pub ring: Arc<LearntRing>,
    /// This member's id (its own entries are skipped on collection).
    pub member: usize,
    /// Prefix high-water mark: only clauses whose variables are all below
    /// this index may be exported. Guard and goal variables are allocated
    /// after the replica forked, so they sit at or above the mark.
    pub max_var: u32,
    /// Length cap on exported clauses.
    pub max_len: usize,
    /// Ring cursor: sequence number consumed up to.
    pub last_seen: u64,
    /// Learnts that passed the filter, awaiting the next restart flush.
    pub pending: Vec<Vec<Lit>>,
}

impl Exchange {
    pub fn new(ring: Arc<LearntRing>, member: usize, max_var: u32, max_len: usize) -> Exchange {
        Exchange { ring, member, max_var, max_len, last_seen: 0, pending: Vec::new() }
    }

    /// Does this learnt clause qualify for export?
    #[inline]
    pub fn eligible(&self, lits: &[Lit]) -> bool {
        lits.len() <= self.max_len
            && lits.iter().all(|l| (l.var().index() as u32) < self.max_var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lit(v: u32) -> Lit {
        Var(v).pos()
    }

    #[test]
    fn ring_skips_own_entries_and_advances_cursor() {
        let ring = LearntRing::new(8);
        ring.publish(0, &[lit(1), lit(2)]);
        ring.publish(1, &[lit(3)]);
        let mut got = Vec::new();
        let cur = ring.collect_since(0, 0, &mut got);
        assert_eq!(cur, 2);
        assert_eq!(got.len(), 1);
        assert_eq!(&*got[0], &[lit(3)][..]);
        // Nothing new since the cursor.
        let mut again = Vec::new();
        assert_eq!(ring.collect_since(0, cur, &mut again), 2);
        assert!(again.is_empty());
    }

    #[test]
    fn ring_is_bounded_fifo() {
        let ring = LearntRing::new(2);
        ring.publish(0, &[lit(1)]);
        ring.publish(0, &[lit(2)]);
        ring.publish(0, &[lit(3)]);
        let mut got = Vec::new();
        ring.collect_since(1, 0, &mut got);
        assert_eq!(got.len(), 2, "oldest entry evicted");
        assert_eq!(&*got[0], &[lit(2)][..]);
        assert_eq!(ring.exported(), 3);
    }

    #[test]
    fn eligibility_filters_by_var_mark_and_length() {
        let ring = Arc::new(LearntRing::new(8));
        let ex = Exchange::new(ring, 0, 10, 2);
        assert!(ex.eligible(&[lit(3), lit(9)]));
        assert!(!ex.eligible(&[lit(3), lit(10)]), "at the mark is out");
        assert!(!ex.eligible(&[lit(1), lit(2), lit(3)]), "too long");
    }
}
