//! CDCL SAT solver: two-watched-literal propagation, first-UIP learning with
//! basic clause minimization, VSIDS branching with phase saving, Luby
//! restarts and activity-driven learnt-clause deletion.
//!
//! The design follows MiniSat's architecture; everything is implemented from
//! scratch here because the verifier must run without an external solver.

use crate::budget::{Budget, CancelToken};
use crate::clause::{Clause, ClauseRef, Watcher};
use crate::failpoints;
use crate::heap::VarHeap;
use crate::types::{LBool, Lit, Var};

pub mod simplify;

use simplify::Simp;

/// Outcome of a `solve` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found; see [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource budget was exhausted — the paper's "T.O" outcome.
    Unknown,
}

/// Search statistics, cumulative over the solver's lifetime.
#[derive(Clone, Copy, Default, Debug)]
pub struct Stats {
    pub conflicts: u64,
    pub propagations: u64,
    pub decisions: u64,
    pub restarts: u64,
    pub learnt_clauses: u64,
    pub deleted_clauses: u64,
    /// Variables removed by bounded variable elimination (preprocessing).
    pub vars_eliminated: u64,
    /// Clauses deleted or strengthened by (self-)subsumption.
    pub clauses_subsumed: u64,
    /// Clauses shortened by vivification (inprocessing).
    pub clauses_vivified: u64,
    /// Foreign lemmas attached through the learnt-clause exchange.
    pub learnts_imported: u64,
}

impl Stats {
    /// Fold another solver's (or query's) statistics into this one.
    /// Aggregation over many queries is how the observability layer and
    /// the explain renderer total search effort per verification stage.
    pub fn merge(&mut self, other: &Stats) {
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.decisions += other.decisions;
        self.restarts += other.restarts;
        self.learnt_clauses += other.learnt_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.vars_eliminated += other.vars_eliminated;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_vivified += other.clauses_vivified;
        self.learnts_imported += other.learnts_imported;
    }
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;
/// Propagations between cancellation-token polls. Small enough that a
/// tripped token stops the solver within a bounded (and tiny) amount of
/// work; large enough that the atomic load is invisible in profiles.
const CANCEL_POLL_INTERVAL: u64 = 64;

/// The CDCL solver.
///
/// `Clone` produces a full replica: same clause database (original and
/// learnt), assignment trail, activity order, preprocessing state and
/// statistics. The obligation-parallel path uses this to replay a
/// committed shared prefix into pool members at clause level instead of
/// re-blasting it. A clone shares the donor's cancellation token and
/// learnt-exchange ring handle; callers re-point both before solving
/// (`solve_with` installs the budget's token, `set_exchange` the ring).
#[derive(Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: VarHeap,
    seen: Vec<bool>,
    /// Per-variable assumed polarity of the current `solve_with` call
    /// (`Undef` = not an assumption). Lets `analyze_final` test assumption
    /// membership in O(1) instead of scanning the assumption slice.
    assumption_mark: Vec<LBool>,
    /// False once a top-level conflict has been derived.
    ok: bool,
    model: Vec<LBool>,
    conflict_core: Vec<Lit>,
    num_learnts: usize,
    max_learnts: f64,
    /// Set when the learnt DB outgrew its cap; reduction runs at the next
    /// restart so the watch lists are only rebuilt at decision level 0.
    reduce_pending: bool,
    /// Bytes of literal storage across live clauses (original + learnt);
    /// checked against `Budget::max_clause_bytes`.
    clause_bytes: usize,
    /// Token of the budget currently being solved under, polled inside
    /// `propagate` so cancellation lands at propagation granularity.
    active_cancel: CancelToken,
    /// Propagation count at which the token is polled next.
    cancel_poll_at: u64,
    /// Set by `propagate` when the active token tripped mid-run.
    interrupted: bool,
    /// Pre/inprocessing state (BVE elimination stack, frozen set,
    /// vivification cursor); see the [`simplify`] module.
    simp: Simp,
    /// Learnt-clause exchange with sibling pool replicas, when attached.
    /// Exports are filtered at the learn site (prefix-only, short) and
    /// buffered; the ring round-trip happens at restart boundaries.
    exchange: Option<crate::exchange::Exchange>,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Fresh solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            saved_phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            seen: Vec::new(),
            assumption_mark: Vec::new(),
            ok: true,
            model: Vec::new(),
            conflict_core: Vec::new(),
            num_learnts: 0,
            max_learnts: 8192.0,
            reduce_pending: false,
            clause_bytes: 0,
            active_cancel: CancelToken::new(),
            cancel_poll_at: CANCEL_POLL_INTERVAL,
            interrupted: false,
            simp: Simp::new(),
            exchange: None,
            stats: Stats::default(),
        }
    }

    /// Attach a learnt-clause exchange (see [`crate::exchange`]): eligible
    /// learnts are published to the ring and sibling lemmas imported at
    /// restart boundaries. Replaces any previous attachment.
    pub fn set_exchange(&mut self, ex: crate::exchange::Exchange) {
        self.exchange = Some(ex);
    }

    /// Detach the learnt-clause exchange, if any.
    pub fn clear_exchange(&mut self) {
        self.exchange = None;
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.saved_phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.assumption_mark.push(LBool::Undef);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.simp.on_new_var();
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of non-deleted clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Bytes of literal storage held by live clauses — the quantity capped
    /// by [`Budget::max_clause_bytes`].
    pub fn clause_db_bytes(&self) -> usize {
        self.clause_bytes
    }

    /// Whether the clause set is still possibly satisfiable (no top-level
    /// conflict derived yet).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    #[inline]
    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Current value of a literal under the partial assignment.
    #[inline]
    pub fn value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor(!l.is_positive())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause (callable only at decision level 0, i.e. between solves).
    /// Returns `false` when the clause set became trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at the top level");
        if !self.ok {
            return false;
        }
        // BVE soundness: a new clause over an eliminated variable invalidates
        // the elimination — restore the variable's removed clauses first.
        self.restore_referenced(lits);
        if !self.ok {
            return false;
        }
        self.simp.note_clause_added(lits);
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        // Tautology / satisfied / falsified literal elimination at level 0.
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // contains l and ¬l: tautology
            }
            match self.value(l) {
                LBool::True => return true, // already satisfied forever
                LBool::False => {}          // drop the literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.assign(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_new(out, false, 0);
                true
            }
        }
    }

    /// One learnt-exchange round at a restart boundary: flush the pending
    /// exports to the ring, then import every new sibling lemma. No-op
    /// without an attached exchange.
    fn exchange_round(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "exchange runs at restart boundaries");
        let Some(mut ex) = self.exchange.take() else { return };
        for lits in ex.pending.drain(..) {
            ex.ring.publish(ex.member, &lits);
        }
        let mut incoming = Vec::new();
        ex.last_seen = ex.ring.collect_since(ex.member, ex.last_seen, &mut incoming);
        let mut attached = 0u64;
        for lits in &incoming {
            if self.import_learnt(lits) {
                attached += 1;
            }
            if !self.ok {
                break;
            }
        }
        if attached > 0 {
            ex.ring.note_imported(attached);
            self.stats.learnts_imported += attached;
        }
        self.exchange = Some(ex);
    }

    /// Attach a foreign learnt clause at decision level 0. Mirrors
    /// [`Solver::add_clause`] — restore-on-reuse for BVE'd variables,
    /// sort/dedup, tautology and satisfied/falsified literal elimination —
    /// but attaches as a *learnt* clause (subject to database reduction)
    /// and deliberately skips `simp.note_clause_added`: imported lemmas are
    /// redundant, so they must not re-trigger preprocessing.
    ///
    /// Returns `true` when the clause was attached or asserted as a unit.
    pub fn import_learnt(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "imports happen at the top level");
        if !self.ok {
            return false;
        }
        // BVE soundness: the importer may have eliminated a variable the
        // exporter still branches on — restore its clauses first, exactly
        // like PR 7's restore-on-reuse in `add_clause`.
        self.restore_referenced(lits);
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return false; // tautology: nothing to learn
            }
            match self.value(l) {
                LBool::True => return false, // already satisfied at level 0
                LBool::False => {}           // drop the falsified literal
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.assign(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let lbd = out.len() as u32;
                self.attach_new(out, true, lbd);
                true
            }
        }
    }

    fn attach_new(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        let w0 = !lits[0];
        let w1 = !lits[1];
        let blocker0 = lits[1];
        let blocker1 = lits[0];
        self.clause_bytes += lits.len() * std::mem::size_of::<Lit>();
        self.clauses.push(Clause::new(lits, learnt, lbd));
        self.watches[w0.index()].push(Watcher { cref, blocker: blocker0 });
        self.watches[w1.index()].push(Watcher { cref, blocker: blocker1 });
        if learnt {
            self.num_learnts += 1;
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    #[inline]
    fn assign(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if one arises.
    ///
    /// Polls the active cancellation token every [`CANCEL_POLL_INTERVAL`]
    /// propagations; on a trip it sets `self.interrupted` and returns with
    /// propagation incomplete (`qhead` marks the resume point, so the
    /// assignment stack stays consistent).
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            if self.stats.propagations >= self.cancel_poll_at {
                self.cancel_poll_at = self.stats.propagations + CANCEL_POLL_INTERVAL;
                if self.active_cancel.is_cancelled() {
                    self.interrupted = true;
                    return None;
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // Fast path: the blocker is already true.
                if self.value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal (¬p) sits at position 1.
                let (first, len) = {
                    let c = &mut self.clauses[cref.index()];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    (c.lits[0], c.lits.len())
                };
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[i] = Watcher { cref, blocker: first };
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..len {
                    let lk = self.clauses[cref.index()].lits[k];
                    if self.value(lk) != LBool::False {
                        let c = &mut self.clauses[cref.index()];
                        c.lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watcher { cref, blocker: first });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // Clause is unit or conflicting.
                ws[i] = Watcher { cref, blocker: first };
                i += 1;
                if self.value(first) == LBool::False {
                    conflict = Some(cref);
                    break;
                }
                self.assign(first, Some(cref));
            }
            // Put the (possibly shrunk) watcher list back, preserving any
            // watchers not visited because of an early conflict exit.
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn cla_bump(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.index()];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > RESCALE_LIMIT {
            for cl in &mut self.clauses {
                cl.activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level and the clause's LBD.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // slot for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = conflict;
        let current = self.decision_level();

        loop {
            self.cla_bump(cref);
            let start = usize::from(p.is_some());
            let n = self.clauses[cref.index()].lits.len();
            for j in start..n {
                let q = self.clauses[cref.index()].lits[j];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            cref = self.reason[pl.var().index()].expect("non-decision literal has a reason");
            p = Some(pl);
        }
        learnt[0] = !p.expect("first UIP exists");

        // Basic clause minimization: a literal is redundant when its reason's
        // remaining literals are all already in the clause (seen) or fixed.
        // Keep the pre-minimization literals around: their `seen` flags must
        // all be cleared below even when the literal is dropped.
        let to_clear: Vec<Lit> = learnt.clone();
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            if !self.literal_redundant(l) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);

        // Backtrack level: the second-highest level in the clause.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // LBD = number of distinct decision levels in the clause.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        // Clear every seen flag set for this analysis (including literals
        // minimized away — leaking them would corrupt the next analysis).
        for &l in &to_clear {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level, lbd)
    }

    /// Is `l` implied by the other literals of the learnt clause?
    fn literal_redundant(&self, l: Lit) -> bool {
        let Some(r) = self.reason[l.var().index()] else {
            return false;
        };
        let c = &self.clauses[r.index()];
        c.lits.iter().skip(1).all(|q| {
            let v = q.var();
            self.seen[v.index()] || self.level[v.index()] == 0
        })
    }

    /// Undo assignments above `target` decision level.
    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.saved_phase[v.index()] = l.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.value_var(v) == LBool::Undef && !self.simp.is_eliminated(v) {
                return Some(Lit::new(v, self.saved_phase[v.index()]));
            }
        }
        None
    }

    /// Reduce the learnt-clause database: drop the lower-activity half,
    /// keeping binary clauses and low-LBD clauses, then simplify every
    /// remaining clause against the level-0 assignment and rebuild watches.
    ///
    /// Must run at decision level 0 — rebuilding watch lists mid-search
    /// would break the watched-literal invariant (both watches could be
    /// false while an unwatched literal is true).
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        // Level-0 reasons are never dereferenced again; drop them so no
        // dangling ClauseRef survives deletion.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        let mut cands: Vec<(usize, f64)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2 && c.lbd > 2)
            .map(|(i, c)| (i, c.activity))
            .collect();
        cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let to_delete = cands.len() / 2;
        for &(i, _) in cands.iter().take(to_delete) {
            self.delete_clause(i);
        }
        self.simplify_level0();
        self.rebuild_watches();
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    fn delete_clause(&mut self, i: usize) {
        let c = &mut self.clauses[i];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.num_learnts -= 1;
        }
        c.deleted = true;
        self.clause_bytes -= c.lits.len() * std::mem::size_of::<Lit>();
        c.lits = Vec::new();
        self.stats.deleted_clauses += 1;
    }

    /// Strip level-0-false literals from every clause and delete clauses
    /// satisfied at level 0. Runs only at decision level 0.
    fn simplify_level0(&mut self) {
        for i in 0..self.clauses.len() {
            if self.clauses[i].deleted {
                continue;
            }
            let mut satisfied = false;
            let mut kept: Vec<Lit> = Vec::with_capacity(self.clauses[i].lits.len());
            for k in 0..self.clauses[i].lits.len() {
                let l = self.clauses[i].lits[k];
                match self.value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => kept.push(l),
                }
            }
            if satisfied {
                self.delete_clause(i);
                continue;
            }
            match kept.len() {
                0 => {
                    self.ok = false;
                    return;
                }
                1 => {
                    let unit = kept[0];
                    self.delete_clause(i);
                    self.assign(unit, None);
                }
                _ => {
                    let dropped = self.clauses[i].lits.len() - kept.len();
                    self.clause_bytes -= dropped * std::mem::size_of::<Lit>();
                    self.clauses[i].lits = kept;
                }
            }
        }
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted || c.lits.len() < 2 {
                continue;
            }
            let cref = ClauseRef(i as u32);
            self.watches[(!c.lits[0]).index()].push(Watcher { cref, blocker: c.lits[1] });
            self.watches[(!c.lits[1]).index()].push(Watcher { cref, blocker: c.lits[0] });
        }
    }

    /// Is `l` one of the assumption literals of the active `solve_with`?
    #[inline]
    fn is_assumption(&self, l: Lit) -> bool {
        self.assumption_mark[l.var().index()] == LBool::from_bool(l.is_positive())
    }

    /// Collect the subset of assumptions responsible for falsifying `p`
    /// (a failed assumption) into `conflict_core`.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    if self.is_assumption(l) {
                        self.conflict_core.push(!l);
                    }
                }
                Some(r) => {
                    let n = self.clauses[r.index()].lits.len();
                    for j in 1..n {
                        let q = self.clauses[r.index()].lits[j];
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Failed-assumption core from the last `Unsat` answer under assumptions.
    pub fn conflict_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Simplify the clause database against the level-0 assignment: delete
    /// satisfied clauses, strip false literals, rebuild the watch lists.
    /// Callable only between solves (decision level 0). Incremental clients
    /// should call this after retiring an assumption guard with a unit
    /// clause — the now-satisfied guarded clauses would otherwise stay on
    /// the watch lists and tax every later propagation.
    pub fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0, "simplify runs between solves");
        if !self.ok {
            return;
        }
        // Level-0 reasons are never dereferenced again; drop them so no
        // dangling ClauseRef survives deletion.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        self.simplify_level0();
        if !self.ok {
            return;
        }
        self.rebuild_watches();
        if self.propagate().is_some() {
            self.ok = false;
        }
    }

    /// Solve with no assumptions.
    pub fn solve(&mut self, budget: &Budget) -> SolveResult {
        self.solve_with(&[], budget)
    }

    /// Solve under the given assumption literals.
    pub fn solve_with(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveResult {
        self.cancel_until(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Fault injection: Panic aborts here (isolation layers catch it);
        // the other faults degrade to the budget-exhausted answer.
        if failpoints::trip("sat::solve").is_some() {
            return SolveResult::Unknown;
        }
        self.conflict_core.clear();
        self.active_cancel = budget.cancel.clone();
        self.cancel_poll_at = self.stats.propagations + CANCEL_POLL_INTERVAL;
        self.interrupted = false;
        // A budget dead on arrival (tripped token, past deadline, original
        // clauses already over the memory cap) never enters the search loop.
        if budget.interrupted() || budget.clause_bytes_exhausted(self.clause_bytes) {
            return SolveResult::Unknown;
        }
        // Restore any eliminated variables the assumptions mention, then run
        // the (gated) preprocessing pass. Both can derive a top-level
        // conflict; both run strictly at decision level 0.
        self.prepare_solve(assumptions, budget);
        if !self.ok {
            return SolveResult::Unsat;
        }
        for &a in assumptions {
            self.assumption_mark[a.var().index()] = LBool::from_bool(a.is_positive());
        }
        let result = self.solve_loop(assumptions, budget);
        for &a in assumptions {
            self.assumption_mark[a.var().index()] = LBool::Undef;
        }
        result
    }

    /// Restart loop of `solve_with`; assumption marks are set on entry and
    /// cleared by the caller on every exit path.
    fn solve_loop(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveResult {
        let mut restarts = 0u64;
        let start_conflicts = self.stats.conflicts;
        loop {
            if self.reduce_pending {
                self.reduce_pending = false;
                self.reduce_db();
                self.max_learnts *= 1.3;
                if !self.ok {
                    return SolveResult::Unsat;
                }
            }
            let limit = RESTART_BASE * luby(restarts);
            match self.search(limit, assumptions, budget) {
                Some(r) => {
                    self.cancel_until(0);
                    return r;
                }
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    // Restart boundary: the solver is back at decision
                    // level 0, the only place foreign clauses may be
                    // attached (and BVE-eliminated variables restored).
                    self.exchange_round();
                    if !self.ok {
                        return SolveResult::Unsat;
                    }
                    // A preprocessing pass deferred at solve entry runs at
                    // the first restart after the call has spent enough
                    // conflicts to prove the query nontrivial.
                    if self.simp.deferred
                        && self.stats.conflicts.saturating_sub(start_conflicts)
                            >= self.simp.cfg.preprocess_min_conflicts
                    {
                        self.preprocess_pass(budget);
                        if !self.ok {
                            return SolveResult::Unsat;
                        }
                        if self.interrupted
                            || budget.exhausted(self.stats.conflicts, self.stats.propagations)
                        {
                            return SolveResult::Unknown;
                        }
                    }
                    if self.simp.should_vivify(self.stats.conflicts) {
                        self.vivify_round(budget);
                        if !self.ok {
                            return SolveResult::Unsat;
                        }
                        if self.interrupted
                            || budget.exhausted(self.stats.conflicts, self.stats.propagations)
                        {
                            return SolveResult::Unknown;
                        }
                    }
                }
            }
        }
    }

    /// Run CDCL until `conflict_limit` conflicts (→ `None`, meaning restart)
    /// or a definitive result.
    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget: &Budget,
    ) -> Option<SolveResult> {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                debug_assert!(
                    self.clauses[confl.index()]
                        .lits
                        .iter()
                        .all(|&l| self.value(l) == LBool::False),
                    "conflict clause must be fully falsified"
                );
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.cancel_until(bt);
                // Export hook: a short learnt clause over prefix variables
                // only is a lemma every sibling replica can use. Buffered
                // here, flushed to the ring at the next restart boundary.
                if let Some(ex) = self.exchange.as_mut() {
                    if ex.eligible(&learnt) {
                        ex.pending.push(learnt.clone());
                    }
                }
                if learnt.len() == 1 {
                    self.assign(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_new(learnt, true, lbd);
                    self.assign(asserting, Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.cla_inc /= CLA_DECAY;
                if budget.exhausted(self.stats.conflicts, self.stats.propagations)
                    || budget.clause_bytes_exhausted(self.clause_bytes)
                {
                    return Some(SolveResult::Unknown);
                }
                if self.num_learnts as f64 > self.max_learnts {
                    self.reduce_pending = true;
                }
                if conflicts_here >= conflict_limit || self.reduce_pending {
                    self.cancel_until(0);
                    return None;
                }
            } else {
                if self.interrupted {
                    // Token tripped mid-propagation; `qhead` marks where to
                    // resume, so the partial state stays reusable.
                    return Some(SolveResult::Unknown);
                }
                // Decision: assumptions first, then VSIDS.
                let mut next = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::False => {
                            self.analyze_final(!a);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(l) => l,
                    None => match self.pick_branch_lit() {
                        Some(l) => l,
                        None => {
                            self.model = self.assigns.clone();
                            // Reconstruct values for BVE-eliminated variables
                            // so witnesses survive preprocessing.
                            self.extend_model();
                            return Some(SolveResult::Sat);
                        }
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.assign(next, None);
            }
        }
    }

    /// Export the live problem clauses (original clauses plus level-0 unit
    /// facts, not learnt clauses) as DIMACS CNF. After preprocessing the
    /// numbering has gaps at eliminated variables; callable only between
    /// solves.
    pub fn export_cnf(&self) -> crate::dimacs::Cnf {
        debug_assert_eq!(self.decision_level(), 0);
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let level0 = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &l in &self.trail[..level0] {
            clauses.push(vec![l]);
        }
        for c in &self.clauses {
            if !c.deleted && !c.learnt {
                clauses.push(c.lits.clone());
            }
        }
        crate::dimacs::Cnf { num_vars: self.num_vars(), clauses }
    }

    /// Model value of a variable after a `Sat` answer. Variables untouched by
    /// the search default to `False`.
    pub fn model_value(&self, v: Var) -> bool {
        self.model.get(v.index()).and_then(|b| b.as_bool()).unwrap_or(false)
    }

    /// Model value of a literal after a `Sat` answer.
    pub fn model_lit(&self, l: Lit) -> bool {
        self.model_value(l.var()) == l.is_positive()
    }
}

/// Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0].pos(), v[1].pos()]));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.model_value(v[0]) || s.model_value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos()]));
        assert!(!s.add_clause(&[v[0].neg()]));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        s.add_clause(&[v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        for &x in &v {
            assert!(s.model_value(x));
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // x0 xor x1 = 1, x1 xor x2 = 1, x0 xor x2 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[a.pos(), b.pos()]);
            s.add_clause(&[a.neg(), b.neg()]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xor1(&mut s, v[0], v[2]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        assert_eq!(s.solve_with(&[v[0].pos(), v[1].neg()], &Budget::unlimited()), SolveResult::Unsat);
        // Without the conflicting assumption the formula is satisfiable.
        assert_eq!(s.solve_with(&[v[0].pos()], &Budget::unlimited()), SolveResult::Sat);
        assert!(s.model_value(v[1]));
        // The failed-assumption core names only relevant assumptions.
        assert_eq!(s.solve_with(&[v[0].pos(), v[1].neg()], &Budget::unlimited()), SolveResult::Unsat);
        assert!(!s.conflict_core().is_empty());
    }

    #[test]
    fn assumption_marks_cleared_between_solves() {
        // The per-var assumption marks must not leak across solve_with
        // calls: a variable assumed in one call and not the next must not
        // show up in the next call's failed-assumption core.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[2].neg(), v[1].pos()]);
        assert_eq!(
            s.solve_with(&[v[0].pos(), v[1].neg()], &Budget::unlimited()),
            SolveResult::Unsat
        );
        // Second call assumes v2 instead of v0; the core must mention only
        // literals over the *current* assumption set.
        assert_eq!(
            s.solve_with(&[v[2].pos(), v[1].neg()], &Budget::unlimited()),
            SolveResult::Unsat
        );
        for &l in s.conflict_core() {
            assert_ne!(l.var(), v[0], "stale assumption mark leaked into the core");
        }
    }

    #[test]
    fn incremental_clause_addition_between_solves() {
        // Clauses may be added at level 0 between solve_with calls; learned
        // state and assignments must stay consistent.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.add_clause(&[v[0].neg()]));
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.model_value(v[1]));
        assert!(s.add_clause(&[v[1].neg(), v[2].pos()]));
        assert_eq!(s.solve_with(&[v[2].neg()], &Budget::unlimited()), SolveResult::Unsat);
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Sat);
        assert!(s.model_value(v[2]));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> =
            (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(&[row[0].pos(), row[1].pos()]);
        }
        #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }

    #[test]
    fn budget_yields_unknown() {
        // A hard instance with a zero-conflict budget must give Unknown
        // (unless solved purely by propagation, which PHP(5,4) is not).
        let mut s = Solver::new();
        let n = 5;
        let m = 4;
        let p: Vec<Vec<Var>> =
            (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // h/i/j symmetry reads better indexed
        for h in 0..m {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[p[i][h].neg(), p[j][h].neg()]);
                }
            }
        }
        let r = s.solve(&Budget::with_conflicts(1));
        assert_eq!(r, SolveResult::Unknown);
        // With a real budget it is proved unsatisfiable.
        assert_eq!(s.solve(&Budget::unlimited()), SolveResult::Unsat);
    }
}
