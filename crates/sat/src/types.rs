//! Core SAT types: variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable into per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    #[allow(clippy::should_implement_trait)] // not a negation of `Var` itself
    pub fn neg(self) -> Lit {
        Lit::new(self, false)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + sign` where `sign == 1` means *negated*, so the two
/// literals of a variable occupy adjacent codes — handy for watch lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Build a literal from a variable; `positive == true` gives `v`,
    /// `false` gives `¬v`.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | (!positive as u32))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` when the literal is the positive phase of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index of this literal (for watch lists et al.).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

/// Lifted Boolean: the value of a variable under a partial assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    Undef,
}

impl LBool {
    /// Lift a concrete Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Negate; `Undef` is a fixed point.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// XOR with a concrete Boolean; `Undef` is absorbing.
    #[inline]
    pub fn xor(self, b: bool) -> LBool {
        if b {
            self.negate()
        } else {
            self
        }
    }

    /// `Some(b)` when assigned, `None` when undefined.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(Lit::from_index(v.pos().index()), v.pos());
    }

    #[test]
    fn adjacent_codes() {
        let v = Var(3);
        assert_eq!(v.pos().index() + 1, v.neg().index());
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(false), LBool::False);
        assert_eq!(LBool::from_bool(true).as_bool(), Some(true));
        assert_eq!(LBool::Undef.as_bool(), None);
    }
}
