//! Indexed binary max-heap over variables, ordered by VSIDS activity.
//!
//! Supports `decrease/increase key` via the `positions` back-map, which a
//! plain `BinaryHeap` cannot do.

use crate::types::Var;

/// Max-heap of variables keyed by an external activity array.
#[derive(Clone, Default, Debug)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// `positions[v] == usize::MAX` when `v` is not in the heap.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Empty heap.
    pub fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Ensure the back-map covers variables `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    /// Whether `v` is currently enqueued.
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.positions.get(v.index()).copied().unwrap_or(ABSENT) != ABSENT
    }

    /// Number of enqueued variables.
    #[allow(dead_code)] // part of the container's natural API
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no variable is enqueued.
    #[allow(dead_code)] // part of the container's natural API
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Insert `v` (no-op when present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.positions[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Remove and return the variable with the highest activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.positions[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restore the heap property around `v` after its activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(v.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let act = activity[v.index()];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if activity[pv.index()] >= act {
                break;
            }
            self.heap[i] = pv;
            self.positions[pv.index()] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.positions[v.index()] = i;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let act = activity[v.index()];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[left].index()]
            {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            if act >= activity[cv.index()] {
                break;
            }
            self.heap[i] = cv;
            self.positions[cv.index()] = i;
            i = child;
        }
        self.heap[i] = v;
        self.positions[v.index()] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let acts = vec![3.0, 1.0, 4.0, 1.5, 9.0];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.insert(Var(i), &acts);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&acts)).map(|v| v.0).collect();
        assert_eq!(order, vec![4, 2, 0, 3, 1]);
    }

    #[test]
    fn insert_is_idempotent() {
        let acts = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &acts);
        h.insert(Var(0), &acts);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn bump_reorders() {
        let mut acts = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &acts);
        }
        acts[0] = 10.0;
        h.bumped(Var(0), &acts);
        assert_eq!(h.pop_max(&acts), Some(Var(0)));
    }
}
