//! Load driver for the `pug-serve` daemon (ISSUE 6 acceptance run).
//!
//! Starts an in-process daemon with a deliberately small admission bound,
//! then drives it hard from many client threads:
//!
//! * **Burst**: 224 pipelined jobs (corpus pairs + KernelGen fuzz pairs,
//!   one rung failpoint armed process-wide) from 16 connections against
//!   `capacity = 8` — most submissions shed; clients retry on the
//!   `retry_after_ms` hint until every job lands a verdict.
//! * **Agreement**: every service verdict is compared **byte-for-byte**
//!   against the in-process [`run_portfolio`] answer for the same pair
//!   (the sticky failpoint degrades both sides identically).
//! * **Disconnects**: connections that pipeline jobs and vanish without
//!   reading; the daemon must cancel exactly those jobs and drain to zero
//!   in-flight.
//! * **Shutdown**: graceful drain with live stragglers; must finish within
//!   the drain deadline plus cancellation grace, leaving nothing behind.
//!
//! Prints throughput and client-observed latency percentiles; the numbers
//! quoted in `EXPERIMENTS.md` ("Service under load — pug-serve") come
//! from this driver.
//!
//! ```text
//! cargo run --release -p pug-serve --example serve_load
//! ```

use pug_ir::GpuConfig;
use pug_serve::client::{http_metrics, Client};
use pug_serve::json::Json;
use pug_serve::protocol::{verify_corpus_request, verify_inline_request};
use pug_serve::server::{start, ServeConfig};
use pug_smt::failpoints::{self, Fault};
use pug_testutil::KernelGen;
use pugpara::portfolio::{run_portfolio, PortfolioOptions};
use pugpara::runner::RunnerOptions;
use pugpara::KernelUnit;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;
const JOBS_PER_CLIENT: usize = 14; // 224 total ≥ 200
const CAPACITY: usize = 8; // small on purpose: force real shedding
const RUNG_TIMEOUT: Duration = Duration::from_secs(30);
const DRAIN: Duration = Duration::from_secs(8);

/// One distinct kernel pair: corpus names or inline sources.
#[derive(Clone)]
enum Pair {
    Corpus(&'static str, &'static str),
    Inline(String, String),
}

impl Pair {
    fn request(&self, id: &str) -> Json {
        match self {
            Pair::Corpus(src, tgt) => verify_corpus_request(id, src, tgt, Some(8), None),
            Pair::Inline(src, tgt) => verify_inline_request(id, src, tgt, 1, 8, None),
        }
    }
}

/// The distinct pairs the burst cycles over. Repeats across 224 jobs are
/// intentional: they exercise the process-wide warm unsat cache.
fn distinct_pairs() -> Vec<Pair> {
    let mut pairs: Vec<Pair> = vec![
        Pair::Corpus("transpose/naive", "transpose/optimized"),
        Pair::Corpus("transpose/naive", "transpose/buggy_addr"),
        Pair::Corpus("reduction/v0", "reduction/v1"),
        Pair::Corpus("reduction/v0", "reduction/buggy_index"),
        Pair::Corpus("vector_add/kernel", "vector_add/kernel"),
        Pair::Corpus("vector_add/kernel", "vector_add/buggy"),
        Pair::Corpus("scalar_product/kernel", "scalar_product/unconstrained"),
        Pair::Corpus("scan/naive", "scan/naive"),
    ];
    // Fuzz pairs: deterministic seeds, self-pairs (mostly equivalences)
    // and successive-pairs (mostly mismatches) from both generator
    // profiles. Determinism matters: the baseline runs the same sources.
    for seed in 0..6u64 {
        let mut gen = KernelGen::basic(seed);
        let k1 = gen.kernel();
        let k2 = gen.kernel();
        pairs.push(Pair::Inline(k1.clone(), k1.clone()));
        pairs.push(Pair::Inline(k1, k2));
    }
    for seed in 6..12u64 {
        let mut gen = KernelGen::extended(seed);
        let k1 = gen.kernel();
        pairs.push(Pair::Inline(k1.clone(), k1));
    }
    pairs
}

/// In-process baseline verdict for a pair, same per-rung budget as the
/// daemon grants.
fn baseline(pair: &Pair) -> String {
    let load_corpus = |name: &str| {
        let (src, _) = pug_serve::corpus::lookup(name).expect("corpus name");
        KernelUnit::load(src).expect("corpus kernel loads")
    };
    let (src, tgt, cfg) = match pair {
        Pair::Corpus(s, t) => {
            let dims = pug_serve::corpus::lookup(s).expect("corpus name").1;
            let cfg = match dims {
                pug_serve::corpus::Dims::One => GpuConfig::symbolic_1d(8),
                pug_serve::corpus::Dims::Two => GpuConfig::symbolic_2d(8),
            };
            (load_corpus(s), load_corpus(t), cfg)
        }
        Pair::Inline(s, t) => (
            KernelUnit::load(s).expect("fuzz src loads"),
            KernelUnit::load(t).expect("fuzz tgt loads"),
            GpuConfig::symbolic_1d(8),
        ),
    };
    let opts = PortfolioOptions {
        runner: RunnerOptions { rung_timeout: Some(RUNG_TIMEOUT), ..RunnerOptions::default() },
        threads: None,
    };
    run_portfolio(&src, &tgt, &cfg, &opts).verdict.to_string()
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct ClientOutcome {
    latencies: Vec<Duration>,
    sheds_retried: u64,
    disagreements: Vec<String>,
    lost: Vec<String>,
}

/// One client connection: pipeline all jobs, collect responses, retry shed
/// ones after the daemon's hint, verify every verdict against the
/// baseline.
fn drive_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    pairs: &[Pair],
    expected: &[String],
    shed_counter: &AtomicU64,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies: Vec::new(),
        sheds_retried: 0,
        disagreements: Vec::new(),
        lost: Vec::new(),
    };
    let mut client = Client::connect(addr).expect("load client connects");
    client.set_recv_timeout(Some(Duration::from_secs(300))).unwrap();

    // job id -> (pair index, submission instant)
    let mut pending: HashMap<String, (usize, Instant)> = HashMap::new();
    for j in 0..JOBS_PER_CLIENT {
        let pair_idx = (client_idx * JOBS_PER_CLIENT + j) % pairs.len();
        let id = format!("c{client_idx}-j{j}");
        client.send(&pairs[pair_idx].request(&id)).expect("send");
        pending.insert(id, (pair_idx, Instant::now()));
    }

    while !pending.is_empty() {
        let resp = match client.recv() {
            Ok(Some(r)) => r,
            Ok(None) => {
                outcome.lost.extend(pending.keys().cloned());
                break;
            }
            Err(e) => {
                outcome.lost.extend(pending.keys().map(|id| format!("{id} ({e})")));
                break;
            }
        };
        let id = resp.str_field("id").unwrap_or("").to_string();
        let Some(&(pair_idx, started)) = pending.get(&id) else { continue };
        match resp.str_field("type") {
            Some("verdict") => {
                let have = resp.str_field("verdict").unwrap_or("");
                if have != expected[pair_idx] {
                    outcome.disagreements.push(format!(
                        "{id}: service `{have}` vs in-process `{}`",
                        expected[pair_idx]
                    ));
                }
                outcome.latencies.push(started.elapsed());
                pending.remove(&id);
            }
            Some("overloaded") => {
                // Explicit shed: honor the hint, then resubmit the SAME id.
                let hint = resp.u64_field("retry_after_ms").unwrap_or(100);
                outcome.sheds_retried += 1;
                shed_counter.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(hint.min(1_000)));
                client.send(&pairs[pair_idx].request(&id)).expect("resend");
            }
            other => {
                outcome.disagreements.push(format!(
                    "{id}: unexpected response type {other:?}: {}",
                    resp.render()
                ));
                pending.remove(&id);
            }
        }
    }
    outcome
}

fn main() {
    pug_serve::smoke::silence_failpoint_panics();
    // Sticky process-wide fault: the Param rung panics every time it runs,
    // for the baselines AND the service — agreement must hold anyway.
    failpoints::arm("runner::param", Fault::Panic);

    let pairs = distinct_pairs();
    println!("== baselines: {} distinct pairs (in-process run_portfolio) ==", pairs.len());
    let t0 = Instant::now();
    let expected: Vec<String> = pairs.iter().map(baseline).collect();
    println!("   done in {:?}", t0.elapsed());

    let cfg = ServeConfig {
        capacity: CAPACITY,
        rung_timeout: RUNG_TIMEOUT,
        drain: DRAIN,
        ..ServeConfig::default()
    };
    let server = start(&cfg, "127.0.0.1:0").expect("daemon starts");
    let addr = server.addr();
    println!("== daemon on {addr} (capacity {CAPACITY}) ==");

    // ---- Phase 1: the burst -------------------------------------------
    let total_jobs = CLIENTS * JOBS_PER_CLIENT;
    println!("== burst: {total_jobs} jobs from {CLIENTS} pipelined connections ==");
    let shed_counter = Arc::new(AtomicU64::new(0));
    let burst_t0 = Instant::now();
    let pairs_arc = Arc::new(pairs);
    let expected_arc = Arc::new(expected);
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let pairs = Arc::clone(&pairs_arc);
            let expected = Arc::clone(&expected_arc);
            let sheds = Arc::clone(&shed_counter);
            std::thread::spawn(move || drive_client(addr, i, &pairs, &expected, &sheds))
        })
        .collect();
    let outcomes: Vec<ClientOutcome> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let burst_elapsed = burst_t0.elapsed();

    let mut latencies: Vec<Duration> = outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
    let lost: Vec<String> = outcomes.iter().flat_map(|o| o.lost.clone()).collect();
    let disagreements: Vec<String> =
        outcomes.iter().flat_map(|o| o.disagreements.clone()).collect();
    let sheds = shed_counter.load(Ordering::Relaxed);
    latencies.sort();

    assert!(lost.is_empty(), "lost jobs (no terminal response): {lost:?}");
    assert!(disagreements.is_empty(), "verdict disagreements:\n{}", disagreements.join("\n"));
    assert_eq!(latencies.len(), total_jobs, "every job must land a verdict");
    assert!(sheds > 0, "capacity {CAPACITY} under {total_jobs} pipelined jobs must shed");

    let throughput = total_jobs as f64 / burst_elapsed.as_secs_f64();
    println!("   all {total_jobs} verdicts agree with the in-process runner");
    println!("   sheds answered + retried: {sheds}");
    println!("   wall {burst_elapsed:?}  throughput {throughput:.1} jobs/s");
    println!(
        "   latency p50 {:?}  p90 {:?}  p99 {:?}  max {:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or_default(),
    );

    // ---- Phase 2: vanishing clients -----------------------------------
    println!("== disconnect storm: 4 connections pipeline 6 jobs each, then vanish ==");
    for i in 0..4 {
        let mut client = Client::connect(addr).expect("disconnect client connects");
        for j in 0..6 {
            let id = format!("gone{i}-{j}");
            let pair = &pairs_arc[(i * 6 + j) % pairs_arc.len()];
            client.send(&pair.request(&id)).expect("send before vanishing");
        }
        drop(client); // vanish without reading a single response
    }
    let drain_watch = Instant::now();
    while server.inflight() > 0 && drain_watch.elapsed() < Duration::from_secs(120) {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(server.inflight(), 0, "disconnected clients' jobs must not linger");
    println!("   in-flight back to 0 in {:?}", drain_watch.elapsed());

    // ---- Phase 3: metrics + graceful shutdown under live load ---------
    let page = http_metrics(addr).expect("GET /metrics");
    for needle in ["serve.jobs.admitted", "serve.jobs.shed", "cache.hits"] {
        assert!(page.contains(needle), "/metrics missing `{needle}`");
    }
    println!("== /metrics live; submitting stragglers then shutting down ==");
    let mut straggler = Client::connect(addr).expect("straggler client connects");
    straggler.set_recv_timeout(Some(Duration::from_secs(120))).unwrap();
    for j in 0..4 {
        let id = format!("straggler-{j}");
        straggler
            .send(&pairs_arc[j % pairs_arc.len()].request(&id))
            .expect("send straggler");
    }
    let shutdown_t0 = Instant::now();
    let report = server.shutdown_with(Duration::from_millis(50)); // deliberately tight
    assert!(report.clean, "shutdown must leave nothing behind: {report:?}");
    println!(
        "   drained: {} in flight at shutdown, {} cancelled, clean={} in {:?} (total {:?})",
        report.inflight_at_shutdown,
        report.stragglers_cancelled,
        report.clean,
        report.elapsed,
        shutdown_t0.elapsed()
    );
    // Stragglers answered terminally even across the drain: verdict if they
    // finished, `aborted` (with provenance) if the drain cancelled them,
    // `shutting_down` if they never got admitted.
    let mut straggler_answers = 0;
    while straggler_answers < 4 {
        match straggler.recv() {
            Ok(Some(resp)) => {
                let ty = resp.str_field("type").unwrap_or("?");
                assert!(
                    matches!(ty, "verdict" | "aborted" | "shutting_down"),
                    "straggler got unexpected `{ty}`: {}",
                    resp.render()
                );
                straggler_answers += 1;
            }
            Ok(None) => break, // daemon closed after draining: acceptable
            Err(e) => panic!("straggler recv failed: {e}"),
        }
    }
    println!("   stragglers answered terminally: {straggler_answers}/4 (rest closed post-drain)");

    failpoints::disarm("runner::param");
    println!("== serve_load PASSED ==");
}
