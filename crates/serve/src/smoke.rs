//! CI smoke: starts an in-process daemon, pushes corpus jobs through the
//! wire (including one with an injected rung fault), and asserts
//!
//! 1. every wire verdict is byte-identical to the in-process
//!    [`run_portfolio`] answer for the same pair (faults included —
//!    failpoints are sticky, so both sides degrade identically);
//! 2. `GET /metrics` answers with the live registry;
//! 3. graceful shutdown completes cleanly within the drain deadline.
//!
//! Run via `pug-serve --smoke`; wired into `ci.sh`.

use crate::client::{http_metrics, Client};
use crate::json::Json;
use crate::protocol::verify_corpus_request;
use crate::server::{start, ServeConfig};
use pug_ir::GpuConfig;
use pug_smt::failpoints::{self, Fault};
use pugpara::portfolio::{run_portfolio, PortfolioOptions};
use pugpara::runner::RunnerOptions;
use pugpara::KernelUnit;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const RUNG_TIMEOUT: Duration = Duration::from_secs(30);
const DRAIN: Duration = Duration::from_secs(20);

/// The corpus pairs the smoke pushes through the daemon. The last pair runs
/// with `runner::param` armed to panic, exercising the per-rung fault
/// boundary end to end.
const PAIRS: &[(&str, &str, &str)] = &[
    ("smoke-verified", "transpose/naive", "transpose/optimized"),
    ("smoke-bug", "reduction/v0", "reduction/buggy_index"),
    ("smoke-underapprox", "scalar_product/kernel", "scalar_product/unconstrained"),
    ("smoke-faulted", "vector_add/kernel", "vector_add/kernel"),
];

/// In-process baseline verdict for a corpus pair, using the same per-rung
/// budget the daemon grants.
fn baseline(src_name: &str, tgt_name: &str) -> String {
    let (src, dims) = crate::corpus::lookup(src_name).expect("smoke corpus src");
    let (tgt, _) = crate::corpus::lookup(tgt_name).expect("smoke corpus tgt");
    let src = KernelUnit::load(src).expect("smoke src loads");
    let tgt = KernelUnit::load(tgt).expect("smoke tgt loads");
    let cfg = match dims {
        crate::corpus::Dims::One => GpuConfig::symbolic_1d(8),
        crate::corpus::Dims::Two => GpuConfig::symbolic_2d(8),
    };
    let opts = PortfolioOptions {
        runner: RunnerOptions { rung_timeout: Some(RUNG_TIMEOUT), ..RunnerOptions::default() },
        threads: None,
    };
    run_portfolio(&src, &tgt, &cfg, &opts).verdict.to_string()
}

/// Keep injected-fault panics (which the runner catches by design) from
/// spraying backtraces over the smoke/load output; every other panic
/// still reports normally.
pub fn silence_failpoint_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("failpoint") {
            prev(info);
        }
    }));
}

/// Run the smoke; returns `Err` with a description on the first failure.
pub fn run_smoke() -> Result<(), String> {
    silence_failpoint_panics();
    // Arm the fault BEFORE computing baselines: sticky failpoints hit the
    // in-process run and the service identically, so even the degraded
    // verdict must agree byte-for-byte.
    failpoints::arm("runner::param", Fault::Panic);
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoints::disarm("runner::param");
        }
    }
    let _disarm = Disarm;

    let mut expected: HashMap<String, String> = HashMap::new();
    for (id, src, tgt) in PAIRS {
        expected.insert(id.to_string(), baseline(src, tgt));
    }

    // Per-job obligation pooling on the service side; the in-process
    // baselines stay sequential — the pooled screen is observationally
    // identical by construction, so the verdicts must still agree
    // byte-for-byte.
    let cfg = ServeConfig {
        rung_timeout: RUNG_TIMEOUT,
        drain: DRAIN,
        obligation_parallelism: 2,
        ..ServeConfig::default()
    };
    let server = start(&cfg, "127.0.0.1:0").map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.addr();

    let mut client =
        Client::connect(addr).map_err(|e| format!("connect failed: {e}"))?;
    client
        .set_recv_timeout(Some(Duration::from_secs(180)))
        .map_err(|e| format!("set timeout: {e}"))?;

    // Control plane first.
    let pong = client
        .request(&Json::obj(vec![("op", "ping".into())]))
        .map_err(|e| format!("ping failed: {e}"))?;
    if pong.str_field("type") != Some("pong") {
        return Err(format!("expected pong, got {}", pong.render()));
    }

    // Pipeline every job, then collect.
    for (id, src, tgt) in PAIRS {
        client
            .send(&verify_corpus_request(id, src, tgt, Some(8), None))
            .map_err(|e| format!("send {id}: {e}"))?;
    }
    let mut got: HashMap<String, String> = HashMap::new();
    while got.len() < PAIRS.len() {
        let resp = client
            .recv()
            .map_err(|e| format!("recv: {e}"))?
            .ok_or("daemon closed the connection mid-smoke")?;
        let id = resp.str_field("id").unwrap_or("").to_string();
        match resp.str_field("type") {
            Some("verdict") => {
                got.insert(id, resp.str_field("verdict").unwrap_or("").to_string());
            }
            other => {
                return Err(format!("job {id}: unexpected response type {other:?}: {}", resp.render()))
            }
        }
    }
    for (id, want) in &expected {
        let have = got.get(id).ok_or_else(|| format!("no verdict for {id}"))?;
        if have != want {
            return Err(format!(
                "verdict disagreement for {id}: service `{have}` vs in-process `{want}`"
            ));
        }
    }

    // Metrics over HTTP.
    let page = http_metrics(addr).map_err(|e| format!("GET /metrics: {e}"))?;
    for needle in ["serve.jobs.admitted", "serve.jobs.completed", "cache.entries"] {
        if !page.contains(needle) {
            return Err(format!("/metrics page is missing `{needle}`:\n{page}"));
        }
    }

    // Graceful shutdown, timed.
    drop(client);
    let t0 = Instant::now();
    let report = server.shutdown();
    if !report.clean {
        return Err(format!("shutdown left jobs behind: {report:?}"));
    }
    if t0.elapsed() > DRAIN + Duration::from_secs(25) {
        return Err(format!("shutdown exceeded drain deadline: {:?}", t0.elapsed()));
    }
    println!(
        "smoke ok: {} pooled jobs (obligation parallelism 2) agreed with sequential \
         in-process verdicts (one fault-injected); /metrics live; drained {} in-flight in {:?}",
        PAIRS.len(),
        report.inflight_at_shutdown,
        report.elapsed
    );
    Ok(())
}
