//! The wire protocol: one JSON object per `\n`-terminated line, both ways.
//!
//! ## Requests
//!
//! ```text
//! {"op":"ping"}
//! {"op":"metrics"}
//! {"op":"shutdown","drain_ms":5000}
//! {"op":"verify","id":"j1","src_kernel":"transpose/naive",
//!  "tgt_kernel":"transpose/optimized","dims":2,"width":8,
//!  "timeout_ms":20000,"explain":false}
//! ```
//!
//! `verify` kernels come either from the bundled corpus (`src_kernel` /
//! `tgt_kernel` wire names, see [`crate::corpus`]) or as inline CUDA text
//! (`src` / `tgt`). `dims`/`width` default from the corpus entry (inline
//! kernels default to 1-D, 8-bit). Multiple `verify` requests may be
//! pipelined on one connection; responses carry the request `id` and may
//! arrive out of submission order.
//!
//! ## Responses
//!
//! | `type`          | meaning                                              |
//! |-----------------|------------------------------------------------------|
//! | `verdict`       | terminal result; `verdict`, `answered_by`, `rungs`   |
//! | `overloaded`    | admission refused: retry after `retry_after_ms`      |
//! | `shutting_down` | daemon is draining; no new work accepted             |
//! | `aborted`       | job cancelled (drain deadline / disconnect), with    |
//! |                 | the partial rung provenance                          |
//! | `error`         | malformed request or kernel; `message`               |
//! | `pong`/`metrics`/`shutdown_ack` | control-plane answers                |
//!
//! A separate minimal HTTP surface answers `GET /metrics` on the same
//! listener with the text rendering of the `pug-obs` registry, for humans
//! and scrapers.

use crate::json::Json;
use pugpara::runner::{Provenance, ResilientReport};

/// Parsed `verify` request.
#[derive(Clone, Debug)]
pub struct VerifyRequest {
    /// Client-chosen job id, echoed on every response for this job.
    pub id: String,
    pub src: KernelSpec,
    pub tgt: KernelSpec,
    /// Block dimensionality override (1 or 2).
    pub dims: Option<u64>,
    /// Scalar bit width override.
    pub width: Option<u64>,
    /// Per-rung wall-clock budget override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Stream the `explain` narrative back with the verdict.
    pub explain: bool,
}

/// Where a kernel comes from.
#[derive(Clone, Debug)]
pub enum KernelSpec {
    /// A bundled corpus kernel, by wire name (`transpose/naive`).
    Corpus(String),
    /// Inline CUDA source.
    Inline(String),
}

/// Any request the daemon understands.
#[derive(Clone, Debug)]
pub enum Request {
    Ping,
    Metrics,
    Shutdown { drain_ms: Option<u64> },
    Verify(Box<VerifyRequest>),
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line)?;
    let op = v.str_field("op").ok_or("missing `op`")?;
    match op {
        "ping" => Ok(Request::Ping),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown { drain_ms: v.u64_field("drain_ms") }),
        "verify" => {
            let id = v.str_field("id").unwrap_or("").to_string();
            if id.is_empty() {
                return Err("verify requires a non-empty `id`".into());
            }
            let spec = |corpus_key: &str, inline_key: &str| -> Result<KernelSpec, String> {
                match (v.str_field(corpus_key), v.str_field(inline_key)) {
                    (Some(name), None) => Ok(KernelSpec::Corpus(name.to_string())),
                    (None, Some(src)) => Ok(KernelSpec::Inline(src.to_string())),
                    (Some(_), Some(_)) => {
                        Err(format!("`{corpus_key}` and `{inline_key}` are exclusive"))
                    }
                    (None, None) => Err(format!("missing `{corpus_key}` or `{inline_key}`")),
                }
            };
            Ok(Request::Verify(Box::new(VerifyRequest {
                id,
                src: spec("src_kernel", "src")?,
                tgt: spec("tgt_kernel", "tgt")?,
                dims: v.u64_field("dims"),
                width: v.u64_field("width"),
                timeout_ms: v.u64_field("timeout_ms"),
                explain: v.get("explain").and_then(Json::as_bool).unwrap_or(false),
            })))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Rung-by-rung provenance as wire JSON.
pub fn provenance_json(prov: &Provenance) -> Json {
    let rungs = prov
        .rungs
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("rung", r.rung.to_string().into()),
                ("outcome", r.outcome.to_string().into()),
                ("elapsed_ms", (r.elapsed.as_millis() as u64).into()),
                ("queries", r.queries.into()),
            ])
        })
        .collect::<Vec<_>>();
    Json::Arr(rungs)
}

/// Terminal `verdict` response for a completed job.
///
/// `verdict` is the canonical [`pugpara::Verdict`] rendering — the exact
/// string an in-process [`pugpara::runner::run_resilient`] /
/// [`pugpara::portfolio::run_portfolio`] caller would print, so
/// service-vs-in-process agreement can be asserted byte-for-byte.
pub fn verdict_response(id: &str, report: &ResilientReport, explain: Option<String>) -> Json {
    let mut fields = vec![
        ("type", "verdict".into()),
        ("id", id.into()),
        ("verdict", report.verdict.to_string().into()),
        (
            "answered_by",
            match report.provenance.answered_by {
                Some(r) => r.to_string().into(),
                None => Json::Null,
            },
        ),
        (
            "soundness_note",
            match &report.provenance.soundness_note {
                Some(n) => n.as_str().into(),
                None => Json::Null,
            },
        ),
        ("elapsed_ms", (report.elapsed.as_millis() as u64).into()),
        ("rungs", provenance_json(&report.provenance)),
    ];
    if let Some(text) = explain {
        fields.push(("explain", text.into()));
    }
    Json::obj(fields)
}

/// Load-shed response: the job was **not** queued; retry after the hint.
pub fn overloaded_response(id: &str, retry_after_ms: u64) -> Json {
    Json::obj(vec![
        ("type", "overloaded".into()),
        ("id", id.into()),
        ("retry_after_ms", retry_after_ms.into()),
    ])
}

/// Admission refused because the daemon is draining.
pub fn shutting_down_response(id: &str) -> Json {
    Json::obj(vec![("type", "shutting_down".into()), ("id", id.into())])
}

/// Job cancelled mid-flight (drain deadline passed, or the client went
/// away); carries whatever rung provenance the job accumulated.
pub fn aborted_response(id: &str, reason: &str, prov: &Provenance) -> Json {
    Json::obj(vec![
        ("type", "aborted".into()),
        ("id", id.into()),
        ("reason", reason.into()),
        ("rungs", provenance_json(prov)),
    ])
}

/// Malformed request / unloadable kernel / internal fault.
pub fn error_response(id: &str, message: &str) -> Json {
    Json::obj(vec![
        ("type", "error".into()),
        ("id", id.into()),
        ("message", message.into()),
    ])
}

/// Builder for a corpus-pair `verify` request (client side).
pub fn verify_corpus_request(
    id: &str,
    src: &str,
    tgt: &str,
    width: Option<u64>,
    timeout_ms: Option<u64>,
) -> Json {
    let mut fields = vec![
        ("op", "verify".into()),
        ("id", id.into()),
        ("src_kernel", src.into()),
        ("tgt_kernel", tgt.into()),
    ];
    if let Some(w) = width {
        fields.push(("width", w.into()));
    }
    if let Some(t) = timeout_ms {
        fields.push(("timeout_ms", t.into()));
    }
    Json::obj(fields)
}

/// Builder for an inline-source `verify` request (client side).
pub fn verify_inline_request(
    id: &str,
    src: &str,
    tgt: &str,
    dims: u64,
    width: u64,
    timeout_ms: Option<u64>,
) -> Json {
    let mut fields = vec![
        ("op", "verify".into()),
        ("id", id.into()),
        ("src", src.into()),
        ("tgt", tgt.into()),
        ("dims", dims.into()),
        ("width", width.into()),
    ];
    if let Some(t) = timeout_ms {
        fields.push(("timeout_ms", t.into()));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_verify_corpus() {
        let line = verify_corpus_request("j1", "transpose/naive", "transpose/optimized", Some(8), Some(1000))
            .render();
        match parse_request(&line).unwrap() {
            Request::Verify(v) => {
                assert_eq!(v.id, "j1");
                assert!(matches!(&v.src, KernelSpec::Corpus(n) if n == "transpose/naive"));
                assert_eq!(v.width, Some(8));
                assert_eq!(v.timeout_ms, Some(1000));
                assert!(!v.explain);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_verify_inline_and_rejects_ambiguous() {
        let line = verify_inline_request("j2", "__global__ void k(){}", "__global__ void k(){}", 1, 8, None)
            .render();
        assert!(matches!(parse_request(&line).unwrap(), Request::Verify(_)));
        assert!(parse_request(r#"{"op":"verify","id":"x","src":"a","src_kernel":"b","tgt":"c"}"#)
            .is_err());
        assert!(parse_request(r#"{"op":"verify","src":"a","tgt":"b"}"#).is_err(), "id required");
        assert!(parse_request(r#"{"op":"nonsense"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping));
        assert!(matches!(parse_request(r#"{"op":"metrics"}"#).unwrap(), Request::Metrics));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","drain_ms":250}"#).unwrap(),
            Request::Shutdown { drain_ms: Some(250) }
        ));
    }
}
