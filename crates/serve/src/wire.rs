//! Line-oriented TCP plumbing shared by the daemon and the client: a
//! buffered line reader that survives read timeouts without losing
//! partial data, and a mutex-guarded line writer usable from many job
//! threads at once.

use crate::json::Json;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};

/// Reject single lines beyond this size — a malformed client must not be
/// able to grow the daemon's buffer without bound. Generous enough for a
/// large inline kernel plus JSON escaping.
const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Buffered `\n`-delimited reader over a [`TcpStream`].
///
/// Unlike `BufReader::read_line`, a read timeout (`WouldBlock` /
/// `TimedOut`) is propagated to the caller with all partially received
/// bytes retained, so the daemon can poll its shutdown state between
/// reads without corrupting the stream framing.
pub(crate) struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Start of un-consumed bytes in `buf`.
    start: usize,
}

impl LineReader {
    pub fn new(stream: TcpStream) -> LineReader {
        LineReader { stream, buf: Vec::with_capacity(4096), start: 0 }
    }

    /// Next complete line (without the terminator); `Ok(None)` on clean
    /// EOF. Timeout errors are safe to retry.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(nl) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + nl;
                let mut line = &self.buf[self.start..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.start = end + 1;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                return Ok(Some(text));
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "line exceeds maximum length",
                ));
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// Shared write half of a connection. Job threads finishing out of order
/// all write through this, one full line at a time, so responses never
/// interleave mid-line.
pub(crate) type SharedWriter = Arc<Mutex<TcpStream>>;

/// Write one response line. Errors are returned (the caller usually
/// ignores them — a vanished client is not a daemon problem).
pub(crate) fn write_line(writer: &SharedWriter, value: &Json) -> io::Result<()> {
    let mut text = value.render();
    text.push('\n');
    // A poisoned writer mutex just means another job thread panicked after
    // locking; the stream itself is still coherent (lines are written
    // whole), so recover the guard.
    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

/// Write a raw pre-rendered blob (the HTTP `/metrics` response).
pub(crate) fn write_raw(writer: &SharedWriter, text: &str) -> io::Result<()> {
    let mut stream = writer.lock().unwrap_or_else(PoisonError::into_inner);
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn splits_lines_across_reads_and_handles_crlf() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"first li").unwrap();
            s.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
            s.write_all(b"ne\r\nsecond\n\nth").unwrap();
            s.write_all(b"ird\n").unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut reader = LineReader::new(conn);
        assert_eq!(reader.next_line().unwrap().as_deref(), Some("first line"));
        assert_eq!(reader.next_line().unwrap().as_deref(), Some("second"));
        assert_eq!(reader.next_line().unwrap().as_deref(), Some(""));
        assert_eq!(reader.next_line().unwrap().as_deref(), Some("third"));
        assert_eq!(reader.next_line().unwrap(), None); // EOF
        sender.join().unwrap();
    }

    #[test]
    fn timeout_preserves_partial_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"hal").unwrap();
            s.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(120));
            s.write_all(b"ves\n").unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        conn.set_read_timeout(Some(std::time::Duration::from_millis(30))).unwrap();
        let mut reader = LineReader::new(conn);
        let mut timeouts = 0;
        let line = loop {
            match reader.next_line() {
                Ok(l) => break l,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    timeouts += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(line.as_deref(), Some("halves"));
        assert!(timeouts >= 1, "the read timeout must have fired at least once");
        sender.join().unwrap();
    }
}
