//! The daemon: admission control, per-job fault isolation, graceful
//! shutdown, warm shared state.
//!
//! ## Fault boundaries, inside out
//!
//! 1. **Rung** — every ladder rung already runs under `catch_unwind` plus
//!    its own watchdog'd [`CancelToken`] (see `pugpara::runner::run_rung`);
//!    a panicking or hung encoding costs that rung only.
//! 2. **Job** — each admitted job gets a child token of the daemon root, a
//!    hard wall-clock deadline, and a `catch_unwind` around the whole job
//!    thread, so even a bug in the service layer poisons one job, never
//!    the daemon. The shared [`QueryCache`] recovers poisoned locks
//!    explicitly, so a crashed job cannot silently disable caching.
//! 3. **Connection** — a vanished client cancels exactly its own in-flight
//!    jobs (their tokens are tracked per connection); other connections and
//!    the pool never notice.
//! 4. **Process** — SIGTERM/ctrl-c (or the `shutdown` op) stops admission,
//!    drains in-flight jobs up to the drain deadline, then cancels
//!    stragglers via the root token; stragglers answer with
//!    provenance-carrying `aborted` responses.
//!
//! ## Admission control
//!
//! The job queue is bounded by a **process-wide [`ResourceBudget`]**: the
//! budget's memory caps divided by a per-job slice give the admission
//! capacity, and every admitted job runs under exactly that slice — so the
//! daemon's worst-case memory is the budget, not `jobs × slice`. When the
//! bound is reached the daemon sheds load *immediately* with an
//! `overloaded` + `retry_after_ms` response (derived from the observed job
//! latency) instead of queueing unboundedly.

use crate::corpus::{self, Dims};
use crate::json::Json;
use crate::protocol::{
    aborted_response, error_response, overloaded_response, parse_request, shutting_down_response,
    verdict_response, KernelSpec, Request, VerifyRequest,
};
use crate::wire::{write_line, write_raw, LineReader, SharedWriter};
use pug_ir::GpuConfig;
use pug_obs::MetricsRegistry;
use pug_smt::{CancelToken, ResourceBudget};
use pugpara::explain::{explain_with, ExplainOptions};
use pugpara::portfolio::{verify_all_on, PortfolioOptions, QueryCache, VerifyTask, WorkerPool};
use pugpara::runner::{panic_message, ResilientReport, RunnerOptions, Watchdog};
use pugpara::{KernelUnit, Verdict};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. `Default` is tuned for a mid-size host; every
/// field can be overridden from the CLI.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the shared rung pool. `0` = `max(4, cores)`.
    pub workers: usize,
    /// Admission bound (running + admitted jobs). `0` = derive from
    /// `budget` (process caps ÷ per-job slice).
    pub capacity: usize,
    /// Process-wide resource budget. Its memory caps bound the *sum* of
    /// all concurrently admitted jobs; each job gets `caps / capacity`.
    pub budget: ResourceBudget,
    /// Per-job memory slice used to derive `capacity` when it is `0`.
    pub per_job_clause_bytes: usize,
    /// Per-job term-node slice used to derive `capacity` when it is `0`.
    pub per_job_term_nodes: usize,
    /// Default per-rung wall-clock budget (requests may override).
    pub rung_timeout: Duration,
    /// Graceful-shutdown drain deadline: in-flight jobs get this long to
    /// finish before the root token cancels them.
    pub drain: Duration,
    /// Process-wide [`QueryCache`] retention bound, in fingerprints.
    pub cache_capacity: usize,
    /// Retry hint handed to shed clients before any latency data exists.
    pub retry_after: Duration,
    /// Intra-rung obligation-pool width handed to every job
    /// ([`RunnerOptions::with_obligation_parallelism`]). Admission is
    /// weighted by it: a job screening obligations over `w` sessions
    /// occupies `w` admission units, so the aggregate thread/memory
    /// pressure stays bounded by `capacity` regardless of the knob.
    /// `1` (the default) keeps jobs sequential — the daemon already
    /// parallelizes across jobs and rungs.
    pub obligation_parallelism: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            capacity: 0,
            budget: ResourceBudget::unlimited()
                .and_clause_bytes(2 << 30)
                .and_term_nodes(256 << 20),
            per_job_clause_bytes: 64 << 20,
            per_job_term_nodes: 8 << 20,
            rung_timeout: Duration::from_secs(30),
            drain: Duration::from_secs(10),
            cache_capacity: pugpara::DEFAULT_QUERY_CACHE_CAPACITY,
            retry_after: Duration::from_millis(200),
            obligation_parallelism: 1,
        }
    }
}

/// Lifecycle states. Monotonic: `RUNNING → DRAINING → STOPPED`.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Extra wall-clock granted after the drain deadline for *cancelled*
/// stragglers to unwind cooperatively (cancellation is observed at
/// propagation / bit-blast granularity, so this is generous).
const CANCEL_GRACE: Duration = Duration::from_secs(15);

/// Resolved admission/slice numbers derived from a [`ServeConfig`].
#[derive(Clone, Copy, Debug)]
struct Resolved {
    workers: usize,
    capacity: usize,
    job_clause_bytes: Option<usize>,
    job_term_nodes: Option<usize>,
    rung_timeout: Duration,
    drain: Duration,
    retry_after: Duration,
    /// Per-job obligation-pool width (≥ 1).
    obligation_parallelism: usize,
    /// Admission units one job occupies: the pool width, clamped to the
    /// capacity so a wide job on a small daemon is still admittable (it
    /// then simply has the daemon to itself).
    job_weight: usize,
}

fn resolve(cfg: &ServeConfig) -> Resolved {
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).max(4)
    } else {
        cfg.workers
    };
    let capacity = if cfg.capacity != 0 {
        cfg.capacity
    } else {
        // The admission bound is the process budget divided into per-job
        // slices: admitting more jobs than the budget holds slices would
        // let the aggregate footprint exceed the process-wide caps.
        let by_clauses = cfg
            .budget
            .max_clause_bytes
            .map(|total| (total / cfg.per_job_clause_bytes.max(1)).max(1));
        let by_nodes = cfg
            .budget
            .max_term_nodes
            .map(|total| (total / cfg.per_job_term_nodes.max(1)).max(1));
        match (by_clauses, by_nodes) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => workers * 4,
        }
    };
    // Every admitted job runs under an equal slice of the process caps.
    let job_clause_bytes = cfg.budget.max_clause_bytes.map(|total| (total / capacity).max(1));
    let job_term_nodes = cfg.budget.max_term_nodes.map(|total| (total / capacity).max(1));
    let obligation_parallelism = cfg.obligation_parallelism.max(1);
    Resolved {
        workers,
        capacity,
        job_clause_bytes,
        job_term_nodes,
        rung_timeout: cfg.rung_timeout,
        drain: cfg.drain,
        retry_after: cfg.retry_after,
        obligation_parallelism,
        job_weight: obligation_parallelism.min(capacity),
    }
}

/// State shared by the accept loop, connection threads and job threads.
struct Shared {
    cfg: Resolved,
    state: AtomicU8,
    /// Daemon-wide kill switch: every job token is a child of this.
    root: CancelToken,
    pool: WorkerPool,
    cache: QueryCache,
    metrics: MetricsRegistry,
    inflight: AtomicUsize,
    /// Drain deadline requested over the protocol (`ms + 1`; 0 = none).
    shutdown_req: AtomicU64,
    next_conn: AtomicU64,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// RAII admission permit; `None` = shed. Admission is weighted: a job
    /// with an obligation pool of width `w` occupies `w` units of the
    /// capacity (`inflight` counts units, not jobs), so raising the
    /// per-job parallelism proportionally lowers the number of jobs the
    /// daemon will run at once.
    fn try_admit(self: &Arc<Shared>) -> Option<Permit> {
        let weight = self.cfg.job_weight;
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur + weight > self.cfg.capacity {
                self.metrics.incr("serve.jobs.shed");
                return None;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + weight,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.metrics.incr("serve.jobs.admitted");
        self.metrics.set_gauge("serve.inflight", self.inflight.load(Ordering::Relaxed) as u64);
        Some(Permit { shared: Arc::clone(self), weight })
    }

    /// Retry hint for shed clients: the observed mean job latency when we
    /// have one, clamped to something a client can reasonably sleep.
    fn retry_after_ms(&self) -> u64 {
        let configured = self.cfg.retry_after.as_millis() as u64;
        match self.metrics.snapshot().histogram("serve.job_us") {
            Some(h) if h.count > 0 => (h.mean_us() / 1000).clamp(configured.max(50), 5_000),
            _ => configured,
        }
    }

    fn publish_gauges(&self) {
        self.metrics.set_gauge("serve.inflight", self.inflight.load(Ordering::Relaxed) as u64);
        self.metrics.set_gauge("serve.capacity", self.cfg.capacity as u64);
        self.metrics.set_gauge("serve.workers", self.cfg.workers as u64);
        self.metrics.set_gauge("serve.job_weight", self.cfg.job_weight as u64);
        self.metrics.set_gauge("serve.state", self.state() as u64);
        self.cache.publish(&self.metrics);
    }
}

/// Releases the job's admission units (and refreshes the gauge) when the
/// job ends, however it ends — the permit rides inside the job thread.
/// The weight is captured at admission so a config change can never
/// unbalance the release.
struct Permit {
    shared: Arc<Shared>,
    weight: usize,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let now = self.shared.inflight.fetch_sub(self.weight, Ordering::AcqRel) - self.weight;
        self.shared.metrics.set_gauge("serve.inflight", now as u64);
    }
}

/// Per-connection state: which jobs are in flight (for disconnect
/// cancellation) and whether the client is gone.
struct ConnState {
    gone: AtomicBool,
    jobs: Mutex<HashMap<u64, CancelToken>>,
    next_job: AtomicU64,
}

/// What graceful shutdown did, for logs and assertions.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Jobs in flight when shutdown began.
    pub inflight_at_shutdown: usize,
    /// Jobs still running when the drain deadline passed (then cancelled).
    pub stragglers_cancelled: usize,
    /// Whether every job finished (or was cancelled and unwound) in time.
    pub clean: bool,
    /// Wall-clock from shutdown start to completion.
    pub elapsed: Duration,
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

/// Bind `addr` (e.g. `127.0.0.1:0`) and start accepting connections.
pub fn start(cfg: &ServeConfig, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let resolved = resolve(cfg);
    let shared = Arc::new(Shared {
        cfg: resolved,
        state: AtomicU8::new(RUNNING),
        root: CancelToken::new(),
        pool: WorkerPool::new(resolved.workers),
        cache: QueryCache::with_capacity(cfg.cache_capacity),
        metrics: MetricsRegistry::new(),
        inflight: AtomicUsize::new(0),
        shutdown_req: AtomicU64::new(0),
        next_conn: AtomicU64::new(0),
    });
    shared.publish_gauges();
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("pug-serve-accept".into())
        .spawn(move || accept_loop(accept_shared, listener))?;
    Ok(ServerHandle { addr: local, shared, accept: Some(accept) })
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's live metrics registry (all clones share state).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.metrics.clone()
    }

    /// The process-wide warm query cache.
    pub fn cache(&self) -> QueryCache {
        self.shared.cache.clone()
    }

    /// Jobs currently admitted (running or about to run).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Drain deadline requested via the wire `shutdown` op, if any.
    pub fn shutdown_requested(&self) -> Option<Duration> {
        match self.shared.shutdown_req.load(Ordering::Acquire) {
            0 => None,
            ms_plus_one => Some(Duration::from_millis(ms_plus_one - 1)),
        }
    }

    /// Gracefully stop with the configured drain deadline.
    pub fn shutdown(self) -> DrainReport {
        let drain = self.shared.cfg.drain;
        self.shutdown_with(drain)
    }

    /// Gracefully stop: refuse new work, drain in-flight jobs up to
    /// `drain`, cancel stragglers via the root token, then join every
    /// thread the daemon owns.
    pub fn shutdown_with(mut self, drain: Duration) -> DrainReport {
        let t0 = Instant::now();
        let shared = &self.shared;
        shared.state.store(DRAINING, Ordering::Release);
        shared.publish_gauges();
        let inflight_at_shutdown = shared.inflight.load(Ordering::Relaxed);

        // Phase 1: let in-flight jobs finish on their own merits.
        while shared.inflight.load(Ordering::Relaxed) > 0 && t0.elapsed() < drain {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stragglers_cancelled = shared.inflight.load(Ordering::Relaxed);

        // Phase 2: past the deadline — trip the daemon root. Every job
        // token is a child, so all stragglers' rungs observe cancellation
        // and unwind; their clients receive `aborted` responses.
        if stragglers_cancelled > 0 {
            shared.root.cancel();
            let grace_end = t0.elapsed() + CANCEL_GRACE;
            while shared.inflight.load(Ordering::Relaxed) > 0 && t0.elapsed() < grace_end {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let clean = shared.inflight.load(Ordering::Relaxed) == 0;

        shared.state.store(STOPPED, Ordering::Release);
        shared.publish_gauges();
        if let Some(h) = self.accept.take() {
            let _ = h.join(); // joins connection threads transitively
        }
        let report = DrainReport {
            inflight_at_shutdown,
            stragglers_cancelled,
            clean,
            elapsed: t0.elapsed(),
        };
        shared.metrics.observe("serve.drain_us", report.elapsed);
        report
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    // Non-blocking accept so the loop can observe shutdown promptly.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    // Keep accepting through DRAINING (not just RUNNING): a client whose
    // handshake completed in the listen backlog has already sent requests;
    // refusing to accept it would RST the socket on listener close and
    // silently discard them, when the contract is an *explicit*
    // `shutting_down` answer.
    while shared.state() != STOPPED {
        match listener.accept() {
            Ok((stream, _peer)) => spawn_conn(&shared, stream, &mut conns),
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Same reasoning at the very end: drain the backlog of connections
    // that arrived between the last poll and STOPPED, so each gets its
    // explicit refusal before the listener closes.
    while let Ok((stream, _peer)) = listener.accept() {
        spawn_conn(&shared, stream, &mut conns);
    }
    for h in conns {
        let _ = h.join();
    }
}

fn spawn_conn(shared: &Arc<Shared>, stream: TcpStream, conns: &mut Vec<JoinHandle<()>>) {
    let conn_shared = Arc::clone(shared);
    let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    match std::thread::Builder::new()
        .name(format!("pug-serve-conn-{conn_id}"))
        .spawn(move || handle_conn(conn_shared, stream))
    {
        Ok(h) => conns.push(h),
        Err(_) => { /* spawn failure: drop the connection */ }
    }
    conns.retain(|h| !h.is_finished());
}

fn handle_conn(shared: Arc<Shared>, stream: TcpStream) {
    shared.metrics.incr("serve.conns.opened");
    let _ = stream.set_nodelay(true);
    // Accepted sockets must be blocking-with-timeout: the reader polls the
    // daemon state between timeouts instead of parking forever.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let writer: SharedWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => {
            shared.metrics.incr("serve.conns.closed");
            return;
        }
    };
    let conn = Arc::new(ConnState {
        gone: AtomicBool::new(false),
        jobs: Mutex::new(HashMap::new()),
        next_job: AtomicU64::new(0),
    });
    let mut reader = LineReader::new(stream);
    loop {
        match reader.next_line() {
            Ok(Some(line)) => {
                if line.starts_with("GET ") {
                    handle_http(&shared, &writer, &line);
                    break; // HTTP is one-shot: respond and close
                }
                if line.is_empty() {
                    continue;
                }
                dispatch(&shared, &conn, &writer, &line);
            }
            Ok(None) => break, // clean EOF
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                let state = shared.state();
                if state == STOPPED {
                    break;
                }
                let no_jobs =
                    conn.jobs.lock().unwrap_or_else(PoisonError::into_inner).is_empty();
                if state == DRAINING && no_jobs {
                    // Draining and nothing left to deliver to this client.
                    break;
                }
            }
            Err(_) => break, // connection reset / protocol violation
        }
    }
    // The client is gone (or the daemon stopped): cancel exactly this
    // connection's in-flight jobs. Their job threads observe the
    // cancellation, classify it, and unwind — other connections never
    // notice.
    conn.gone.store(true, Ordering::Release);
    let jobs = conn.jobs.lock().unwrap_or_else(PoisonError::into_inner);
    for token in jobs.values() {
        token.cancel();
    }
    drop(jobs);
    shared.metrics.incr("serve.conns.closed");
}

/// Minimal HTTP surface: `GET /metrics` renders the registry as text.
fn handle_http(shared: &Arc<Shared>, writer: &SharedWriter, request_line: &str) {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" {
        shared.metrics.incr("serve.http.metrics");
        shared.publish_gauges();
        ("200 OK", shared.metrics.render())
    } else {
        ("404 Not Found", format!("no such path: {path}\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = write_raw(writer, &response);
}

fn dispatch(shared: &Arc<Shared>, conn: &Arc<ConnState>, writer: &SharedWriter, line: &str) {
    match parse_request(line) {
        Err(msg) => {
            shared.metrics.incr("serve.requests.bad");
            let _ = write_line(writer, &error_response("", &msg));
        }
        Ok(Request::Ping) => {
            let _ = write_line(writer, &Json::obj(vec![("type", "pong".into())]));
        }
        Ok(Request::Metrics) => {
            shared.publish_gauges();
            let _ = write_line(writer, &metrics_json(shared));
        }
        Ok(Request::Shutdown { drain_ms }) => {
            // Record the request; the handle owner (the daemon main loop)
            // performs the actual drain so shutdown has a single owner.
            let encoded = drain_ms.unwrap_or(shared.cfg.drain.as_millis() as u64) + 1;
            shared.shutdown_req.store(encoded, Ordering::Release);
            let _ = write_line(writer, &Json::obj(vec![("type", "shutdown_ack".into())]));
        }
        Ok(Request::Verify(req)) => submit_job(shared, conn, writer, *req),
    }
}

fn metrics_json(shared: &Arc<Shared>) -> Json {
    let snap = shared.metrics.snapshot();
    let counters =
        snap.counters.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect::<Vec<_>>();
    let gauges =
        snap.gauges.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect::<Vec<_>>();
    let histograms = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            (
                k.clone(),
                Json::obj(vec![
                    ("count", h.count.into()),
                    ("sum_us", h.sum_us.into()),
                    ("mean_us", h.mean_us().into()),
                ]),
            )
        })
        .collect::<Vec<_>>();
    Json::obj(vec![
        ("type", "metrics".into()),
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
    ])
}

fn submit_job(
    shared: &Arc<Shared>,
    conn: &Arc<ConnState>,
    writer: &SharedWriter,
    req: VerifyRequest,
) {
    if shared.state() != RUNNING {
        shared.metrics.incr("serve.jobs.shed_draining");
        let _ = write_line(writer, &shutting_down_response(&req.id));
        return;
    }
    let Some(permit) = shared.try_admit() else {
        let _ = write_line(writer, &overloaded_response(&req.id, shared.retry_after_ms()));
        return;
    };
    let token = shared.root.child();
    let req_id = req.id.clone();
    let job_key = conn.next_job.fetch_add(1, Ordering::Relaxed);
    conn.jobs.lock().unwrap_or_else(PoisonError::into_inner).insert(job_key, token.clone());

    let job_shared = Arc::clone(shared);
    let job_conn = Arc::clone(conn);
    let job_writer = Arc::clone(writer);
    let spawned = std::thread::Builder::new().name("pug-serve-job".into()).spawn(move || {
        let id = req.id.clone();
        // Job-level fault boundary: a panic in the service layer itself
        // (kernel loading, response building) answers `error` and poisons
        // nothing shared.
        let response = match catch_unwind(AssertUnwindSafe(|| {
            run_job(&job_shared, &job_conn, &req, &token)
        })) {
            Ok(resp) => resp,
            Err(payload) => {
                job_shared.metrics.incr("serve.jobs.panicked");
                error_response(&id, &format!("internal panic: {}", panic_message(&*payload)))
            }
        };
        // A vanished client makes this write fail; that is fine — the job
        // is already accounted for and the permit releases below.
        let _ = write_line(&job_writer, &response);
        job_conn.jobs.lock().unwrap_or_else(PoisonError::into_inner).remove(&job_key);
        drop(permit);
    });
    if spawned.is_err() {
        // The closure (and its permit) was dropped by the failed spawn, so
        // the admission slot is already released.
        // Could not even spawn the job thread: undo the bookkeeping and
        // tell the client to retry.
        conn.jobs.lock().unwrap_or_else(PoisonError::into_inner).remove(&job_key);
        shared.metrics.incr("serve.jobs.spawn_failed");
        let _ = write_line(writer, &overloaded_response(&req_id, shared.retry_after_ms()));
    }
}

/// Resolve a kernel spec to a loaded unit plus its corpus dims hint.
fn load_spec(spec: &KernelSpec) -> Result<(KernelUnit, Option<Dims>), String> {
    match spec {
        KernelSpec::Corpus(name) => {
            let (src, dims) =
                corpus::lookup(name).ok_or_else(|| format!("unknown corpus kernel `{name}`"))?;
            let unit = KernelUnit::load(src)
                .map_err(|e| format!("corpus kernel `{name}` failed to load: {e}"))?;
            Ok((unit, Some(dims)))
        }
        KernelSpec::Inline(src) => {
            let unit = KernelUnit::load(src).map_err(|e| format!("kernel parse error: {e}"))?;
            Ok((unit, None))
        }
    }
}

/// Run one admitted job to a terminal response. Called inside the job
/// thread's `catch_unwind`.
fn run_job(
    shared: &Arc<Shared>,
    conn: &Arc<ConnState>,
    req: &VerifyRequest,
    token: &CancelToken,
) -> Json {
    let t0 = Instant::now();
    let (src, src_dims) = match load_spec(&req.src) {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.incr("serve.jobs.errors");
            return error_response(&req.id, &msg);
        }
    };
    let (tgt, tgt_dims) = match load_spec(&req.tgt) {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.incr("serve.jobs.errors");
            return error_response(&req.id, &msg);
        }
    };
    let dims = match req.dims {
        Some(1) => Dims::One,
        Some(2) => Dims::Two,
        Some(other) => {
            shared.metrics.incr("serve.jobs.errors");
            return error_response(&req.id, &format!("dims must be 1 or 2, got {other}"));
        }
        None => src_dims.or(tgt_dims).unwrap_or(Dims::One),
    };
    let width = req.width.unwrap_or(8).clamp(1, 64) as u32;
    let cfg = match dims {
        Dims::One => GpuConfig::symbolic_1d(width),
        Dims::Two => GpuConfig::symbolic_2d(width),
    };
    let rung_timeout =
        req.timeout_ms.map(Duration::from_millis).unwrap_or(shared.cfg.rung_timeout);
    let opts = PortfolioOptions {
        runner: RunnerOptions {
            rung_timeout: Some(rung_timeout),
            max_clause_bytes: shared.cfg.job_clause_bytes,
            max_term_nodes: shared.cfg.job_term_nodes,
            query_cache: Some(shared.cache.clone()),
            metrics: shared.metrics.clone(),
            obligation_parallelism: shared.cfg.obligation_parallelism,
            ..RunnerOptions::default()
        },
        threads: None,
    };
    // Hard job deadline: the racing ladder is three rungs wide under the
    // default policy, so even fully serialized on a saturated pool the job
    // should resolve within a few rung budgets; beyond that something is
    // wedged and the job token trips.
    let hard_deadline = rung_timeout.saturating_mul(4) + Duration::from_secs(5);
    let _watchdog = Watchdog::arm(token.clone(), hard_deadline);

    let task = VerifyTask::new(&req.id, src, tgt, cfg);
    let report: ResilientReport =
        verify_all_on(&shared.pool, std::slice::from_ref(&task), &opts, token)
            .pop()
            .expect("one task in, one report out");
    shared.metrics.observe("serve.job_us", t0.elapsed());

    // Classify a cancelled job: an externally tripped token turned the
    // verdict into `Timeout`; report it as an explicit abort with the
    // partial provenance instead of a look-alike solver timeout.
    if matches!(report.verdict, Verdict::Timeout) && token.is_cancelled() {
        let reason = if shared.state() != RUNNING {
            shared.metrics.incr("serve.jobs.aborted.shutdown");
            "daemon shutdown: drain deadline exceeded"
        } else if conn.gone.load(Ordering::Acquire) {
            shared.metrics.incr("serve.jobs.aborted.disconnect");
            "client disconnected"
        } else {
            shared.metrics.incr("serve.jobs.aborted.deadline");
            "job deadline exceeded"
        };
        return aborted_response(&req.id, reason, &report.provenance);
    }

    shared.metrics.incr("serve.jobs.completed");
    let explain = req.explain.then(|| explain_with(&report, &ExplainOptions::stable()));
    verdict_response(&req.id, &report, explain)
}
