//! The `pug-serve` daemon binary.
//!
//! ```text
//! pug-serve [--addr 127.0.0.1:7227] [--workers N] [--capacity N]
//!           [--rung-timeout-ms MS] [--drain-ms MS] [--cache-capacity N]
//!           [--obligation-parallelism N]
//! pug-serve --smoke        # run the CI smoke and exit
//! ```
//!
//! The daemon serves until SIGTERM/SIGINT or a wire `shutdown` request,
//! then drains gracefully and exits 0 (non-zero if the drain left
//! stragglers that refused to unwind).

use pug_serve::server::{start, ServeConfig};
use pug_serve::signal;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pug-serve [--addr HOST:PORT] [--workers N] [--capacity N]\n\
         \x20                [--rung-timeout-ms MS] [--drain-ms MS] [--cache-capacity N]\n\
         \x20                [--obligation-parallelism N]\n\
         \x20      pug-serve --smoke"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        match pug_serve::smoke::run_smoke() {
            Ok(()) => return,
            Err(msg) => {
                eprintln!("smoke FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    let mut addr = "127.0.0.1:7227".to_string();
    let mut cfg = ServeConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => cfg.workers = parse(&value("--workers")),
            "--capacity" => cfg.capacity = parse(&value("--capacity")),
            "--rung-timeout-ms" => {
                cfg.rung_timeout = Duration::from_millis(parse(&value("--rung-timeout-ms")))
            }
            "--drain-ms" => cfg.drain = Duration::from_millis(parse(&value("--drain-ms"))),
            "--cache-capacity" => cfg.cache_capacity = parse(&value("--cache-capacity")),
            "--obligation-parallelism" => {
                cfg.obligation_parallelism = parse(&value("--obligation-parallelism"))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    signal::install();
    let server = match start(&cfg, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pug-serve: bind {addr} failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("pug-serve: listening on {}", server.addr());

    // Serve until a signal or a wire shutdown request.
    let drain = loop {
        if signal::triggered() {
            eprintln!("pug-serve: signal received, draining");
            break None;
        }
        if let Some(requested) = server.shutdown_requested() {
            eprintln!("pug-serve: shutdown requested over the wire, draining");
            break Some(requested);
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    let report = match drain {
        Some(d) => server.shutdown_with(d),
        None => server.shutdown(),
    };
    eprintln!(
        "pug-serve: drained {} in-flight ({} cancelled) in {:?}",
        report.inflight_at_shutdown, report.stragglers_cancelled, report.elapsed
    );
    std::process::exit(if report.clean { 0 } else { 1 });
}

fn parse<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid numeric value `{text}`");
        usage()
    })
}
