//! A small blocking client for the daemon's line protocol, used by the
//! CLI, the smoke test and the load driver. One connection can pipeline
//! many jobs; [`Client::recv`] returns responses in arrival order (which
//! may differ from submission order — match on the echoed `id`).

use crate::json::Json;
use crate::wire::LineReader;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

pub struct Client {
    writer: TcpStream,
    reader: LineReader,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(5))
    }

    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: LineReader::new(stream) })
    }

    /// Bound how long [`Client::recv`] blocks. `None` = wait forever.
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one request line without waiting for the answer (pipelining).
    pub fn send(&mut self, request: &Json) -> io::Result<()> {
        let mut line = request.render();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Next response line, parsed. `Ok(None)` when the daemon closed the
    /// connection. A read timeout surfaces as `Err(WouldBlock/TimedOut)`
    /// and is safe to retry.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        match self.reader.next_line()? {
            None => Ok(None),
            Some(line) => Json::parse(&line)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Send one request and wait for exactly one response. Only valid when
    /// nothing else is pipelined on this connection.
    pub fn request(&mut self, request: &Json) -> io::Result<Json> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }
}

/// Fetch the daemon's `GET /metrics` page over a throwaway connection.
pub fn http_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: pug-serve\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected status: {}", response.lines().next().unwrap_or("")),
        ));
    }
    Ok(body)
}
