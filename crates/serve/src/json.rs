//! Minimal hand-rolled JSON: just enough for the line protocol.
//!
//! The repo's no-new-deps rule (the container is offline) rules out serde;
//! the protocol needs objects, strings, numbers, booleans and arrays, so
//! this is a ~300-line value type with a recursive-descent parser and a
//! deterministic writer. Object keys keep insertion order, so rendered
//! responses are byte-stable — the load driver compares service verdicts
//! against in-process verdicts textually.

use std::fmt;

/// A JSON value. Numbers are `f64` (every protocol number fits well below
/// 2^53, where `f64` is exact for integers).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String field of an object (`get` + `as_str`).
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Integer field of an object (`get` + `as_u64`).
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Render on one line (no trailing newline), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..\uDFFF`.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            // hex4 advanced past the digits; undo the +1 below
                            self.pos -= 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.pos = end;
        Ok(cp)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::obj(vec![
            ("op", "verify".into()),
            ("id", "j-1".into()),
            ("n", 42u64.into()),
            ("pi", 3.5.into()),
            ("ok", true.into()),
            ("nothing", Json::Null),
            ("arr", vec![Json::from(1u64), Json::from("two")].into()),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.str_field("op"), Some("verify"));
        assert_eq!(back.u64_field("n"), Some(42));
        assert_eq!(back.get("pi").and_then(Json::as_f64), Some(3.5));
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("arr").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }

    #[test]
    fn escapes_roundtrip() {
        let nasty = "line\nbreak \"quoted\" back\\slash\ttab \u{1}ctrl ünïcødé 🚀";
        let v = Json::obj(vec![("s", nasty.into())]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.str_field("s"), Some(nasty));
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5 , \"\\u0041\\ud83d\\ude80\" ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("A🚀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from(0u64).render(), "0");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(1.25).render(), "1.25");
    }
}
