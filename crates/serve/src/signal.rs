//! SIGTERM / SIGINT handling without any crate dependency: a direct FFI
//! declaration of `signal(2)` installing a handler that only stores to a
//! static atomic (the full extent of what is async-signal-safe here). The
//! daemon main loop polls [`triggered`] and runs graceful shutdown on its
//! own threads.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Has SIGTERM or SIGINT arrived since [`install`]?
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Acquire)
}

/// For tests / the wire `shutdown` op: behave as if a signal arrived.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Release);
}

#[cfg(unix)]
pub fn install() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        // POSIX `signal(2)`. Using the typed-function-pointer form keeps
        // this dependency-free; the return value (previous handler) is
        // deliberately ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::Release);
    }
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install() {
    // No signal story off Unix; ctrl-c terminates the process directly and
    // the wire `shutdown` op remains available.
}
