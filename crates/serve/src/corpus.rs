//! Named kernel corpus: the bundled `pug-kernels` sources addressable over
//! the wire as `family/variant`, so clients can submit verification jobs
//! without shipping CUDA text (inline source remains supported for
//! everything else, e.g. fuzz-generated kernels).

/// Default block dimensionality of a corpus kernel's configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dims {
    One,
    Two,
}

/// All corpus entries: `(name, source, default dims)`.
pub fn entries() -> &'static [(&'static str, &'static str, Dims)] {
    use pug_kernels as k;
    &[
        ("transpose/naive", k::transpose::NAIVE, Dims::Two),
        ("transpose/optimized", k::transpose::OPTIMIZED, Dims::Two),
        ("transpose/optimized_unconstrained", k::transpose::OPTIMIZED_UNCONSTRAINED, Dims::Two),
        ("transpose/buggy_addr", k::transpose::BUGGY_ADDR, Dims::Two),
        ("transpose/buggy_guard", k::transpose::BUGGY_GUARD, Dims::Two),
        ("reduction/v0", k::reduction::V0, Dims::One),
        ("reduction/v1", k::reduction::V1, Dims::One),
        ("reduction/v2", k::reduction::V2, Dims::One),
        ("reduction/buggy_index", k::reduction::BUGGY_INDEX, Dims::One),
        ("reduction/buggy_guard", k::reduction::BUGGY_GUARD, Dims::One),
        ("vector_add/kernel", k::vector_add::KERNEL, Dims::One),
        ("vector_add/buggy", k::vector_add::BUGGY, Dims::One),
        ("scalar_product/kernel", k::scalar_product::KERNEL, Dims::One),
        ("scalar_product/unconstrained", k::scalar_product::UNCONSTRAINED, Dims::One),
        ("matmul/naive", k::matmul::NAIVE, Dims::Two),
        ("matmul/tiled", k::matmul::TILED, Dims::Two),
        ("scan/naive", k::scan::NAIVE, Dims::One),
        ("bitonic/kernel", k::bitonic::KERNEL, Dims::One),
    ]
}

/// Look a corpus kernel up by wire name.
pub fn lookup(name: &str) -> Option<(&'static str, Dims)> {
    entries().iter().find(|(n, _, _)| *n == name).map(|&(_, src, dims)| (src, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pugpara::KernelUnit;

    #[test]
    fn every_corpus_entry_parses() {
        for (name, src, _) in entries() {
            assert!(KernelUnit::load(src).is_ok(), "corpus kernel `{name}` must load");
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert!(lookup("transpose/naive").is_some());
        assert_eq!(lookup("transpose/naive").unwrap().1, Dims::Two);
        assert!(lookup("no/such").is_none());
    }
}
