//! # pug-serve — a fault-tolerant persistent verification service
//!
//! Batch verification (`pugpara::portfolio::verify_all`) answers "check
//! this corpus once"; this crate answers "keep a verifier *warm* and let
//! many clients submit kernel pairs over time". A long-lived daemon owns
//! one shared [`pugpara::portfolio::WorkerPool`], one process-wide bounded
//! [`pugpara::portfolio::QueryCache`] and one `pug-obs`
//! [`pug_obs::MetricsRegistry`]; jobs arrive as line-delimited JSON over
//! TCP (hand-rolled — the build is offline, so no serde/tokio/hyper).
//!
//! The four properties the daemon guarantees (see [`server`] for the
//! mechanics, and `DESIGN.md` §6 for the rationale):
//!
//! * **Admission control & backpressure** — the job queue is bounded by a
//!   process-wide [`pug_smt::ResourceBudget`] divided into per-job slices;
//!   beyond it, jobs are shed *immediately* with `overloaded` +
//!   `retry_after_ms`, never queued unboundedly.
//! * **Per-job fault isolation** — each job runs under a child
//!   [`pug_smt::CancelToken`] with a hard deadline and its own
//!   `catch_unwind`; a panicking, hung or cancelled job answers for itself
//!   and nothing else. A disconnected client cancels exactly its own jobs.
//! * **Graceful shutdown** — SIGTERM/ctrl-c (or the wire `shutdown` op)
//!   stops admission, drains in-flight jobs to a deadline, then cancels
//!   stragglers; aborted jobs still answer with their partial rung
//!   provenance.
//! * **Warm shared state** — the cross-job unsat cache makes repeat
//!   submissions of a kernel family dramatically cheaper; `GET /metrics`
//!   exposes the registry; `explain` narratives stream on request.

pub mod client;
pub mod corpus;
pub mod json;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod smoke;
mod wire;

pub use client::{http_metrics, Client};
pub use protocol::{parse_request, KernelSpec, Request, VerifyRequest};
pub use server::{start, DrainReport, ServeConfig, ServerHandle};
