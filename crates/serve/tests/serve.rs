//! End-to-end integration tests for the `pug-serve` daemon: real TCP, real
//! jobs, real shutdown. Each test boots its own daemon on an ephemeral
//! port. (Failpoint-based fault injection lives in the `--smoke` binary
//! path and the `serve_load` example — failpoints are process-global and
//! these tests run concurrently.)

use pug_ir::GpuConfig;
use pug_serve::client::{http_metrics, Client};
use pug_serve::json::Json;
use pug_serve::protocol::{verify_corpus_request, verify_inline_request};
use pug_serve::server::{start, ServeConfig};
use pug_serve::ServerHandle;
use pugpara::portfolio::{run_portfolio, PortfolioOptions};
use pugpara::KernelUnit;
use std::time::{Duration, Instant};

fn boot(cfg: &ServeConfig) -> ServerHandle {
    start(cfg, "127.0.0.1:0").expect("daemon binds an ephemeral port")
}

/// A deterministically *heavy* job: proving 32-bit multiplication
/// distributivity is a classically hard SAT instance (minutes, not
/// milliseconds), so this job reliably stays in flight until cancelled.
/// Distributivity — unlike associativity or commutativity — is *not* an
/// AC rearrangement, so the canonicalization pass cannot discharge it by
/// rewriting and the obligation genuinely reaches the SAT solver.
/// The generous `timeout_ms` keeps the per-rung watchdog out of the way.
fn heavy_request(id: &str) -> Json {
    const SRC: &str = r#"
__global__ void mulDist(int *d, int *a, int *b, int *c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        d[i] = (a[i] + b[i]) * c[i];
    }
}
"#;
    const TGT: &str = r#"
__global__ void mulDist(int *d, int *a, int *b, int *c, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        d[i] = a[i] * c[i] + b[i] * c[i];
    }
}
"#;
    verify_inline_request(id, SRC, TGT, 1, 32, Some(600_000))
}

fn connect(server: &ServerHandle) -> Client {
    let c = Client::connect(server.addr()).expect("client connects");
    c.set_recv_timeout(Some(Duration::from_secs(120))).unwrap();
    c
}

fn in_process_verdict(src_name: &str, tgt_name: &str) -> String {
    let (src, dims) = pug_serve::corpus::lookup(src_name).unwrap();
    let (tgt, _) = pug_serve::corpus::lookup(tgt_name).unwrap();
    let cfg = match dims {
        pug_serve::corpus::Dims::One => GpuConfig::symbolic_1d(8),
        pug_serve::corpus::Dims::Two => GpuConfig::symbolic_2d(8),
    };
    run_portfolio(
        &KernelUnit::load(src).unwrap(),
        &KernelUnit::load(tgt).unwrap(),
        &cfg,
        &PortfolioOptions::default(),
    )
    .verdict
    .to_string()
}

#[test]
fn ping_metrics_and_http_metrics() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);

    let pong = client.request(&Json::obj(vec![("op", "ping".into())])).unwrap();
    assert_eq!(pong.str_field("type"), Some("pong"));

    let metrics = client.request(&Json::obj(vec![("op", "metrics".into())])).unwrap();
    assert_eq!(metrics.str_field("type"), Some("metrics"));
    assert!(metrics.get("gauges").is_some());

    let page = http_metrics(server.addr()).unwrap();
    assert!(page.contains("serve.capacity"), "gauges should be on the page:\n{page}");

    let report = server.shutdown();
    assert!(report.clean);
}

#[test]
fn wire_verdicts_match_the_in_process_runner() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);

    // One equivalence, one real bug — both must agree byte-for-byte.
    for (id, src, tgt) in [
        ("eq", "vector_add/kernel", "vector_add/kernel"),
        ("bug", "vector_add/kernel", "vector_add/buggy"),
    ] {
        let resp =
            client.request(&verify_corpus_request(id, src, tgt, Some(8), None)).unwrap();
        assert_eq!(resp.str_field("type"), Some("verdict"), "got {}", resp.render());
        assert_eq!(resp.str_field("id"), Some(id));
        assert_eq!(
            resp.str_field("verdict").unwrap(),
            in_process_verdict(src, tgt),
            "service and in-process verdicts must be identical for {id}"
        );
        let rungs = resp.get("rungs").and_then(Json::as_arr).unwrap();
        assert!(!rungs.is_empty(), "provenance must carry at least one rung record");
    }
    assert!(server.shutdown().clean);
}

#[test]
fn explain_narrative_streams_on_request() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);
    let req = Json::obj(vec![
        ("op", "verify".into()),
        ("id", "explained".into()),
        ("src_kernel", "reduction/v0".into()),
        ("tgt_kernel", "reduction/buggy_guard".into()),
        ("explain", true.into()),
    ]);
    let resp = client.request(&req).unwrap();
    assert_eq!(resp.str_field("type"), Some("verdict"));
    let narrative = resp.str_field("explain").expect("explain requested, explain delivered");
    assert!(!narrative.is_empty());
    assert!(server.shutdown().clean);
}

#[test]
fn bad_requests_answer_errors_not_disconnects() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);
    for bad in [
        r#"{"op":"verify","id":"x","src_kernel":"no/such","tgt_kernel":"vector_add/kernel"}"#
            .to_string(),
        r#"{"op":"teleport"}"#.to_string(),
        "not json at all".to_string(),
        r#"{"op":"verify","src_kernel":"vector_add/kernel","tgt_kernel":"vector_add/kernel"}"#
            .to_string(), // missing id
    ] {
        let resp = client.request(&Json::parse(&bad).unwrap_or(Json::Str(bad))).unwrap();
        assert_eq!(resp.str_field("type"), Some("error"), "got {}", resp.render());
    }
    // The connection survived four protocol errors.
    let pong = client.request(&Json::obj(vec![("op", "ping".into())])).unwrap();
    assert_eq!(pong.str_field("type"), Some("pong"));
    assert!(server.shutdown().clean);
}

/// With a single admission slot held by a heavy job, the next submission
/// must be shed *immediately* with an explicit `overloaded` + retry hint —
/// and a vanished client must free its slot for others.
#[test]
fn overload_sheds_explicitly_and_disconnect_frees_the_slot() {
    let cfg = ServeConfig { capacity: 1, ..ServeConfig::default() };
    let server = boot(&cfg);

    // Connection A occupies the only slot with the heavy job.
    let mut heavy = connect(&server);
    heavy.send(&heavy_request("heavy")).unwrap();
    let t0 = Instant::now();
    while server.inflight() == 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.inflight(), 1, "the heavy job must be admitted");

    // Connection B is shed, immediately and explicitly.
    let mut quick = connect(&server);
    let shed = quick
        .request(&verify_corpus_request("quick", "vector_add/kernel", "vector_add/kernel", Some(8), None))
        .unwrap();
    assert_eq!(shed.str_field("type"), Some("overloaded"), "got {}", shed.render());
    assert!(shed.u64_field("retry_after_ms").unwrap_or(0) > 0, "shed needs a retry hint");

    // A vanishes without reading: its job is cancelled, the slot frees.
    drop(heavy);
    let t1 = Instant::now();
    while server.inflight() > 0 && t1.elapsed() < Duration::from_secs(60) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.inflight(), 0, "disconnect must cancel the heavy job and free its slot");

    // B retries and now completes.
    let resp = quick
        .request(&verify_corpus_request("quick", "vector_add/kernel", "vector_add/kernel", Some(8), None))
        .unwrap();
    assert_eq!(resp.str_field("type"), Some("verdict"), "got {}", resp.render());

    let metrics = server.metrics().snapshot();
    assert!(metrics.counters.get("serve.jobs.shed").copied().unwrap_or(0) >= 1);
    assert!(
        metrics.counters.get("serve.jobs.aborted.disconnect").copied().unwrap_or(0) >= 1,
        "the cancelled heavy job must be classified as a disconnect abort"
    );
    assert!(server.shutdown().clean);
}

/// Graceful shutdown with a live straggler: the drain deadline passes, the
/// root token cancels the job, and the daemon still exits clean — with the
/// straggler counted.
#[test]
fn shutdown_drains_and_cancels_stragglers_within_deadline() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);
    client.send(&heavy_request("straggler")).unwrap();
    let t0 = Instant::now();
    while server.inflight() == 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.inflight(), 1);

    let t1 = Instant::now();
    let report = server.shutdown_with(Duration::from_millis(300));
    assert!(report.clean, "shutdown left work behind: {report:?}");
    assert_eq!(report.inflight_at_shutdown, 1);
    assert_eq!(report.stragglers_cancelled, 1, "the heavy job cannot finish in 300ms");
    assert!(
        t1.elapsed() < Duration::from_secs(30),
        "drain + cancellation grace blew way past the deadline: {:?}",
        t1.elapsed()
    );

    // The straggler's client still gets a terminal, provenance-carrying
    // answer (aborted), not silence.
    let resp = client.recv().unwrap().expect("straggler answered before close");
    assert_eq!(resp.str_field("type"), Some("aborted"), "got {}", resp.render());
    assert!(resp.str_field("reason").unwrap_or("").contains("shutdown"));
    assert!(resp.get("rungs").is_some(), "aborts carry partial provenance");
}

/// Regression: a client whose connection was still in the listen backlog
/// when shutdown began (handshake done, never `accept`ed) must get
/// explicit `shutting_down` answers — not a TCP reset that discards them.
#[test]
fn backlogged_connection_across_fast_drain_gets_explicit_answers() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);
    for j in 0..4 {
        client
            .send(&verify_corpus_request(
                &format!("s{j}"),
                "vector_add/kernel",
                "vector_add/kernel",
                Some(8),
                None,
            ))
            .unwrap();
    }
    // Shut down immediately: with high probability the accept loop has not
    // yet picked the connection out of the backlog.
    let report = server.shutdown_with(Duration::from_millis(50));
    assert!(report.clean);
    let mut answered = 0;
    loop {
        match client.recv() {
            Ok(Some(resp)) => {
                assert!(
                    matches!(resp.str_field("type"), Some("verdict" | "shutting_down")),
                    "got {}",
                    resp.render()
                );
                answered += 1;
                if answered == 4 {
                    break;
                }
            }
            Ok(None) => panic!("connection closed after only {answered} answers"),
            Err(e) => panic!("recv failed after {answered} answers: {e}"),
        }
    }
}

/// New work is refused while draining.
#[test]
fn draining_daemon_refuses_new_jobs_explicitly() {
    let server = boot(&ServeConfig::default());
    let mut client = connect(&server);
    client.send(&heavy_request("heavy")).unwrap();
    let t0 = Instant::now();
    while server.inflight() == 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(10));
    }

    // Begin shutdown on a helper thread (it blocks while draining).
    let shutdown = std::thread::spawn(move || server.shutdown_with(Duration::from_millis(500)));
    std::thread::sleep(Duration::from_millis(100)); // let DRAINING latch

    let resp = client
        .request(&verify_corpus_request("late", "vector_add/kernel", "vector_add/kernel", Some(8), None))
        .unwrap();
    assert_eq!(resp.str_field("type"), Some("shutting_down"), "got {}", resp.render());

    let report = shutdown.join().unwrap();
    assert!(report.clean);
}
