//! Hierarchical span tracing with a disabled-sink fast path.
//!
//! A [`TraceSink`] collects [`TraceEvent`]s — span opens, span closes and
//! instant points — into an in-memory buffer guarded by a mutex. Sequence
//! numbers and span ids are allocated *under* that lock so the event stream
//! is totally ordered even when worker threads record concurrently (the
//! portfolio runs rungs on a pool). The sink is an `Option<Arc<..>>`
//! internally: [`TraceSink::disabled`] holds `None`, so every recording
//! method is a single branch on a niche-optimised option — near-zero cost,
//! and the guarantee the trace-parity suite measures.
//!
//! Callers thread a [`TraceSpan`] (sink + current parent id) through the
//! pipeline instead of the raw sink; `child`/`point` on a disabled span are
//! no-ops, so instrumented code never checks a flag except to avoid
//! building attribute strings. [`SpanGuard`] closes its span on drop, which
//! keeps traces balanced even when a panic unwinds through an instrumented
//! region into a `catch_unwind` fault boundary.
//!
//! Export is JSONL (one event per line); [`parse_jsonl`] and [`validate`]
//! round-trip and structurally check a dump so the CI trace smoke and the
//! property tests can assert well-formedness without external tooling.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of one span within one sink. `0` means "no span" (the root
/// parent); real spans start at 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span: used as the parent of top-level spans.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the absent span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// An attribute value. Deliberately no float variant: durations go out as
/// integer microseconds, which keeps the JSONL round-trip exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttrValue {
    Str(String),
    Int(i64),
    UInt(u64),
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::UInt(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::UInt(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Key/value attributes attached to an event.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// What an event records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A span starts; `span` is the new id, `parent` its enclosing span.
    Open,
    /// A span ends; `span` names the span being closed.
    Close,
    /// An instant event under `parent` (no duration).
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Close => "close",
            EventKind::Point => "point",
        }
    }
}

/// One recorded event. `t_us` is microseconds since the sink was created
/// (monotonic clock).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub seq: u64,
    pub kind: EventKind,
    pub span: SpanId,
    /// Enclosing span for `Open`/`Point`; `SpanId::NONE` for `Close`.
    pub parent: SpanId,
    /// Span or point name; empty for `Close`.
    pub name: String,
    pub t_us: u64,
    pub attrs: Vec<(String, AttrValue)>,
}

struct Inner {
    start: Instant,
    /// Set when the event buffer overflows `MAX_EVENTS`; recording stops.
    truncated: AtomicBool,
    state: Mutex<State>,
}

#[derive(Default)]
struct State {
    next_span: u64,
    events: Vec<TraceEvent>,
}

/// Hard cap on buffered events — a runaway fuzz loop should degrade the
/// trace, not the process.
const MAX_EVENTS: usize = 4_000_000;

/// A handle to a trace buffer. Cheap to clone; all clones feed the same
/// buffer. The default is [`TraceSink::disabled`].
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink::disabled"),
            Some(inner) => {
                // Recover a poisoned buffer rather than misreporting it as
                // empty: the event vec is always structurally valid.
                let n = inner
                    .state
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .events
                    .len();
                write!(f, "TraceSink::recording({n} events)")
            }
        }
    }
}

impl TraceSink {
    /// A sink that records nothing. Every method on it is a single branch.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A sink that buffers events in memory.
    pub fn recording() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                truncated: AtomicBool::new(false),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the event buffer overflowed and recording stopped.
    pub fn is_truncated(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.truncated.load(Ordering::Relaxed))
    }

    fn record(&self, kind: EventKind, span: SpanId, parent: SpanId, name: &str, attrs: Attrs) -> SpanId {
        let Some(inner) = &self.inner else { return SpanId::NONE };
        let t_us = inner.start.elapsed().as_micros() as u64;
        let mut st = match inner.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if st.events.len() >= MAX_EVENTS {
            inner.truncated.store(true, Ordering::Relaxed);
            return SpanId::NONE;
        }
        let span = if kind == EventKind::Open {
            st.next_span += 1;
            SpanId(st.next_span)
        } else {
            span
        };
        let seq = st.events.len() as u64;
        st.events.push(TraceEvent {
            seq,
            kind,
            span,
            parent,
            name: name.to_string(),
            t_us,
            attrs: attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
        span
    }

    /// Open a span under `parent` and return its id.
    pub fn open(&self, parent: SpanId, name: &str) -> SpanId {
        self.open_with(parent, name, Vec::new())
    }

    /// Open a span under `parent` with attributes.
    pub fn open_with(&self, parent: SpanId, name: &str, attrs: Attrs) -> SpanId {
        self.record(EventKind::Open, SpanId::NONE, parent, name, attrs)
    }

    /// Close `span`.
    pub fn close(&self, span: SpanId) {
        self.close_with(span, Vec::new());
    }

    /// Close `span` with attributes (typically the outcome).
    pub fn close_with(&self, span: SpanId, attrs: Attrs) {
        if span.is_none() {
            return;
        }
        self.record(EventKind::Close, span, SpanId::NONE, "", attrs);
    }

    /// Record an instant event under `parent`.
    pub fn point(&self, parent: SpanId, name: &str, attrs: Attrs) {
        self.record(EventKind::Point, SpanId::NONE, parent, name, attrs);
    }

    /// Snapshot the buffered events.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => match inner.state.lock() {
                Ok(g) => g.events.clone(),
                Err(p) => p.into_inner().events.clone(),
            },
        }
    }

    /// Render the buffered events as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            render_event(&mut out, &ev);
            out.push('\n');
        }
        out
    }
}

/// A position in the span tree: a sink plus the current parent span. This
/// is what gets threaded through the pipeline; `child`/`point` on a
/// disabled span cost one branch.
#[derive(Clone, Default)]
pub struct TraceSpan {
    sink: TraceSink,
    id: SpanId,
}

impl fmt::Debug for TraceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sink.is_enabled() {
            write!(f, "TraceSpan({})", self.id.0)
        } else {
            write!(f, "TraceSpan::disabled")
        }
    }
}

impl TraceSpan {
    /// A span handle that records nothing.
    pub fn disabled() -> TraceSpan {
        TraceSpan::default()
    }

    /// The root position of `sink`: children open at the top level.
    pub fn root(sink: TraceSink) -> TraceSpan {
        TraceSpan { sink, id: SpanId::NONE }
    }

    /// Whether events recorded through this handle go anywhere. Check this
    /// before building expensive attribute strings.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// The underlying sink.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Open a child span and return a handle positioned on it.
    pub fn child(&self, name: &str) -> TraceSpan {
        self.child_with(name, Vec::new())
    }

    /// Open a child span with attributes.
    pub fn child_with(&self, name: &str, attrs: Attrs) -> TraceSpan {
        if !self.sink.is_enabled() {
            return TraceSpan::disabled();
        }
        let id = self.sink.open_with(self.id, name, attrs);
        TraceSpan { sink: self.sink.clone(), id }
    }

    /// Open a child span wrapped in a guard that closes it on drop.
    pub fn child_guard(&self, name: &str) -> SpanGuard {
        SpanGuard { span: self.child(name), closed: false }
    }

    /// Close this span. No-op on the root position or a disabled sink.
    pub fn close(&self) {
        self.sink.close(self.id);
    }

    /// Close this span with attributes.
    pub fn close_with(&self, attrs: Attrs) {
        self.sink.close_with(self.id, attrs);
    }

    /// Record an instant event under this span.
    pub fn point(&self, name: &str, attrs: Attrs) {
        if self.sink.is_enabled() {
            self.sink.point(self.id, name, attrs);
        }
    }
}

/// Closes its span exactly once — explicitly via [`SpanGuard::finish`], or
/// on drop if the scope unwinds. Keeps traces balanced across panics.
pub struct SpanGuard {
    span: TraceSpan,
    closed: bool,
}

impl SpanGuard {
    /// The span handle (for opening children or recording points).
    pub fn span(&self) -> &TraceSpan {
        &self.span
    }

    /// Close the span with attributes.
    pub fn finish(mut self, attrs: Attrs) {
        self.span.close_with(attrs);
        self.closed = true;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.closed {
            self.span.close();
        }
    }
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn render_event(out: &mut String, ev: &TraceEvent) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"seq\":{},\"kind\":\"{}\",\"span\":{},\"parent\":{},\"name\":\"",
        ev.seq,
        ev.kind.as_str(),
        ev.span.0,
        ev.parent.0
    );
    escape_json(out, &ev.name);
    let _ = write!(out, "\",\"t_us\":{},\"attrs\":{{", ev.t_us);
    for (i, (k, v)) in ev.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(out, k);
        out.push_str("\":");
        match v {
            AttrValue::Str(s) => {
                out.push('"');
                escape_json(out, s);
                out.push('"');
            }
            AttrValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push_str("}}");
}

// ---------------------------------------------------------------------------
// JSONL parsing + structural validation (for the CI smoke and tests).
// ---------------------------------------------------------------------------

/// Minimal single-line JSON object reader for the event schema above.
struct Cursor<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor { s: s.as_bytes(), i: 0 }
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err("dangling escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        _ => return Err(format!("unknown escape '\\{}'", e as char)),
                    }
                }
                _ => {
                    // Re-borrow multi-byte UTF-8 sequences whole.
                    let start = self.i - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self.s.get(start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.i = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<AttrValue, String> {
        match self.peek() {
            Some(b'"') => Ok(AttrValue::Str(self.string()?)),
            Some(b't') => {
                self.expect_word("true")?;
                Ok(AttrValue::Bool(true))
            }
            Some(b'f') => {
                self.expect_word("false")?;
                Ok(AttrValue::Bool(false))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.i;
                if c == b'-' {
                    self.i += 1;
                }
                while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
                    self.i += 1;
                }
                let txt = std::str::from_utf8(&self.s[start..self.i]).unwrap();
                if txt.starts_with('-') {
                    txt.parse::<i64>().map(AttrValue::Int).map_err(|e| e.to_string())
                } else {
                    txt.parse::<u64>().map(AttrValue::UInt).map_err(|e| e.to_string())
                }
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(w.as_bytes()) {
            self.i += w.len();
            Ok(())
        } else {
            Err(format!("expected '{w}'"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_line(line: &str) -> Result<TraceEvent, String> {
    let mut c = Cursor::new(line);
    c.eat(b'{')?;
    let mut ev = TraceEvent {
        seq: 0,
        kind: EventKind::Point,
        span: SpanId::NONE,
        parent: SpanId::NONE,
        name: String::new(),
        t_us: 0,
        attrs: Vec::new(),
    };
    let mut seen_kind = false;
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "seq" | "span" | "parent" | "t_us" => {
                let AttrValue::UInt(n) = c.value()? else {
                    return Err(format!("field '{key}' must be a non-negative integer"));
                };
                match key.as_str() {
                    "seq" => ev.seq = n,
                    "span" => ev.span = SpanId(n),
                    "parent" => ev.parent = SpanId(n),
                    _ => ev.t_us = n,
                }
            }
            "kind" => {
                let AttrValue::Str(s) = c.value()? else {
                    return Err("field 'kind' must be a string".into());
                };
                ev.kind = match s.as_str() {
                    "open" => EventKind::Open,
                    "close" => EventKind::Close,
                    "point" => EventKind::Point,
                    other => return Err(format!("unknown kind '{other}'")),
                };
                seen_kind = true;
            }
            "name" => {
                let AttrValue::Str(s) = c.value()? else {
                    return Err("field 'name' must be a string".into());
                };
                ev.name = s;
            }
            "attrs" => {
                c.eat(b'{')?;
                if c.peek() == Some(b'}') {
                    c.eat(b'}')?;
                } else {
                    loop {
                        let k = c.string()?;
                        c.eat(b':')?;
                        let v = c.value()?;
                        ev.attrs.push((k, v));
                        match c.peek() {
                            Some(b',') => c.eat(b',')?,
                            Some(b'}') => {
                                c.eat(b'}')?;
                                break;
                            }
                            other => return Err(format!("bad attrs separator {other:?}")),
                        }
                    }
                }
            }
            other => return Err(format!("unknown field '{other}'")),
        }
        match c.peek() {
            Some(b',') => c.eat(b',')?,
            Some(b'}') => {
                c.eat(b'}')?;
                break;
            }
            other => return Err(format!("bad object separator {other:?}")),
        }
    }
    c.skip_ws();
    if c.i != c.s.len() {
        return Err("trailing garbage after object".into());
    }
    if !seen_kind {
        return Err("missing 'kind' field".into());
    }
    Ok(ev)
}

/// Parse a JSONL trace dump back into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Summary returned by [`validate`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub spans: usize,
    pub points: usize,
    pub max_depth: usize,
    /// Open-event counts per span name (sorted by name).
    pub span_names: Vec<(String, usize)>,
}

/// Structurally check an event stream: sequence numbers strictly increase,
/// every opened span is closed exactly once, closes refer to open spans,
/// and every `Open`/`Point` parent is either the root or a span that is
/// open at that moment. Returns per-name span counts and the maximum
/// nesting depth.
pub fn validate(events: &[TraceEvent]) -> Result<TraceSummary, String> {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<u64, usize> = BTreeMap::new(); // span -> depth
    let mut closed: std::collections::BTreeSet<u64> = Default::default();
    let mut summary = TraceSummary::default();
    let mut names: BTreeMap<String, usize> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    for ev in events {
        if let Some(prev) = last_seq {
            if ev.seq <= prev {
                return Err(format!("seq not strictly increasing at {}", ev.seq));
            }
        }
        last_seq = Some(ev.seq);
        let parent_depth = |p: SpanId, open: &BTreeMap<u64, usize>| -> Result<usize, String> {
            if p.is_none() {
                Ok(0)
            } else {
                open.get(&p.0)
                    .copied()
                    .map(|d| d + 1)
                    .ok_or(format!("seq {}: parent span {} is not open", ev.seq, p.0))
            }
        };
        match ev.kind {
            EventKind::Open => {
                if ev.span.is_none() {
                    return Err(format!("seq {}: open with span id 0", ev.seq));
                }
                if open.contains_key(&ev.span.0) || closed.contains(&ev.span.0) {
                    return Err(format!("seq {}: span {} reused", ev.seq, ev.span.0));
                }
                let depth = parent_depth(ev.parent, &open)?;
                summary.max_depth = summary.max_depth.max(depth);
                open.insert(ev.span.0, depth);
                summary.spans += 1;
                *names.entry(ev.name.clone()).or_insert(0) += 1;
            }
            EventKind::Close => {
                if open.remove(&ev.span.0).is_none() {
                    return Err(format!(
                        "seq {}: close of span {} which is not open",
                        ev.seq, ev.span.0
                    ));
                }
                closed.insert(ev.span.0);
            }
            EventKind::Point => {
                parent_depth(ev.parent, &open)?;
                summary.points += 1;
            }
        }
    }
    if !open.is_empty() {
        let ids: Vec<u64> = open.keys().copied().collect();
        return Err(format!("spans never closed: {ids:?}"));
    }
    summary.span_names = names.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let root = TraceSpan::disabled();
        let child = root.child_with("a", vec![("k", "v".into())]);
        child.point("p", vec![("n", 3u64.into())]);
        child.close();
        assert!(!root.is_enabled());
        assert!(root.sink().events().is_empty());
        assert_eq!(root.sink().to_jsonl(), "");
    }

    #[test]
    fn spans_nest_and_roundtrip_through_jsonl() {
        let sink = TraceSink::recording();
        let root = TraceSpan::root(sink.clone());
        let verify = root.child_with("verify", vec![("pair", "t/t".into())]);
        let rung = verify.child("rung:Param");
        rung.point("query:value[out]", vec![("outcome", "valid".into()), ("us", 12u64.into())]);
        rung.close_with(vec![("outcome", "answered".into())]);
        verify.close();

        let text = sink.to_jsonl();
        let events = parse_jsonl(&text).expect("parses");
        assert_eq!(events.len(), 5);
        let summary = validate(&events).expect("valid");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.points, 1);
        assert_eq!(summary.max_depth, 1);
        assert_eq!(
            summary.span_names,
            vec![("rung:Param".to_string(), 1), ("verify".to_string(), 1)]
        );
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let sink = TraceSink::recording();
        let root = TraceSpan::root(sink.clone());
        let s = root.child_with("weird\"name\\with\nnewline\ttab", vec![("msg", "a\"b".into())]);
        s.close();
        let events = parse_jsonl(&sink.to_jsonl()).expect("parses");
        assert_eq!(events[0].name, "weird\"name\\with\nnewline\ttab");
        assert_eq!(events[0].attrs[0].1, AttrValue::Str("a\"b".into()));
    }

    #[test]
    fn guard_closes_on_unwind() {
        let sink = TraceSink::recording();
        let root = TraceSpan::root(sink.clone());
        let outer = root.child("outer");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = outer.child_guard("inner");
            panic!("boom");
        }));
        assert!(result.is_err());
        outer.close();
        validate(&sink.events()).expect("balanced despite the panic");
    }

    #[test]
    fn validate_rejects_malformed_streams() {
        let sink = TraceSink::recording();
        let root = TraceSpan::root(sink.clone());
        let a = root.child("a");
        let mut events = sink.events();
        // Unclosed span.
        assert!(validate(&events).is_err());
        a.close();
        events = sink.events();
        validate(&events).expect("now balanced");
        // Close of a span that was never opened.
        events.push(TraceEvent {
            seq: 99,
            kind: EventKind::Close,
            span: SpanId(42),
            parent: SpanId::NONE,
            name: String::new(),
            t_us: 0,
            attrs: Vec::new(),
        });
        assert!(validate(&events).is_err());
    }

    #[test]
    fn concurrent_recording_keeps_total_order() {
        let sink = TraceSink::recording();
        let root = TraceSpan::root(sink.clone());
        let parent = root.child("parent");
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = parent.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let s = p.child(&format!("w{t}:{i}"));
                    s.point("tick", Vec::new());
                    s.close();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        parent.close();
        let summary = validate(&sink.events()).expect("ordered and balanced");
        assert_eq!(summary.spans, 1 + 4 * 50);
        assert_eq!(summary.points, 200);
    }
}
