//! # pug-obs — structured tracing and metrics for the PUGpara pipeline
//!
//! Zero-dependency observability layer shared by `pug-sat`, `pug-smt` and
//! `pugpara`:
//!
//! - [`TraceSink`] / [`TraceSpan`]: hierarchical spans
//!   (`verify > rung:Param > bi:2 > query:race[out#2]`) with wall-clock
//!   timestamps, buffered in memory and exported as JSONL. The
//!   [`TraceSink::disabled`] fast path is a niche-optimised `None` — one
//!   branch per call site, measured ≤ 3% on the repro-tables aggregate.
//! - [`MetricsRegistry`]: named counters, gauges and log-bucketed duration
//!   histograms fed by the SAT core (conflicts, propagations, learnt
//!   clauses, restarts), the SMT layer (session epochs, Ackermann selects,
//!   CNF size, cache hits) and the runner (rung outcomes, CA instantiation
//!   chains, ∀-elimination vs. drop decisions).
//! - [`parse_jsonl`] / [`validate`]: round-trip and structural checks for
//!   trace dumps, used by the CI trace smoke and the property tests.
//!
//! The crate deliberately knows nothing about kernels or verdicts; the
//! `explain` narrative renderer lives in `pugpara`, next to the
//! `ResilientReport` it narrates.

pub mod metrics;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, HIST_BUCKETS};
pub use trace::{
    parse_jsonl, validate, AttrValue, Attrs, EventKind, SpanGuard, SpanId, TraceEvent, TraceSink,
    TraceSpan, TraceSummary,
};
