//! A process-local metrics registry: named counters, gauges and
//! log-bucketed duration histograms behind one mutex.
//!
//! Mirrors the sink design in [`crate::trace`]: the registry is an
//! `Option<Arc<Mutex<..>>>`, so [`MetricsRegistry::disabled`] (the default)
//! costs one branch per call and allocates nothing. Names are plain
//! dotted strings (`queries.total`, `sat.conflicts`); snapshots come back
//! in `BTreeMap` order so rendered output is deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds values `< 4^(i+1)` µs,
/// the last bucket is the overflow (≥ ~4.6 hours never happens in a rung).
pub const HIST_BUCKETS: usize = 14;

/// A log-4 bucketed histogram of microsecond values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    pub count: u64,
    pub sum_us: u64,
    pub buckets: [u64; HIST_BUCKETS],
}

impl Histogram {
    fn record(&mut self, us: u64) {
        self.count += 1;
        self.sum_us += us;
        let mut idx = 0usize;
        let mut bound = 4u64;
        while idx + 1 < HIST_BUCKETS && us >= bound {
            idx += 1;
            bound = bound.saturating_mul(4);
        }
        self.buckets[idx] += 1;
    }

    /// Mean value in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Fold another histogram into this one (counts, sums and buckets add).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_us += other.sum_us;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Cheap-to-clone handle to a shared registry; all clones feed the same
/// maps. The default is [`MetricsRegistry::disabled`].
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "MetricsRegistry::disabled"),
            Some(_) => write!(f, "MetricsRegistry::recording"),
        }
    }
}

impl MetricsRegistry {
    /// A registry that records nothing; every method is a single branch.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// A live registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry { inner: Some(Arc::new(Mutex::new(Inner::default()))) }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut g = match inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Some(f(&mut g))
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        if delta > 0 {
            self.with(|i| *i.counters.entry(name.to_string()).or_insert(0) += delta);
        }
    }

    /// Increment the counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.with(|i| *i.counters.entry(name.to_string()).or_insert(0) += 1);
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.with(|i| {
            i.gauges.insert(name.to_string(), value);
        });
    }

    /// Record `us` microseconds into the histogram `name`.
    pub fn observe_micros(&self, name: &str, us: u64) {
        self.with(|i| i.histograms.entry(name.to_string()).or_default().record(us));
    }

    /// Record a duration into the histogram `name`.
    pub fn observe(&self, name: &str, d: Duration) {
        if self.is_enabled() {
            self.observe_micros(name, d.as_micros() as u64);
        }
    }

    /// Copy out the current state (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|i| MetricsSnapshot {
            counters: i.counters.clone(),
            gauges: i.gauges.clone(),
            histograms: i.histograms.clone(),
        })
        .unwrap_or_default()
    }

    /// Render the current state as sorted `name value` lines.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }

    /// Fold a snapshot (typically taken from a worker's private registry)
    /// into this registry: counters and histograms add, gauges overwrite
    /// (last write wins, matching [`MetricsRegistry::set_gauge`]). No-op
    /// when this registry is disabled.
    pub fn merge_from(&self, snap: &MetricsSnapshot) {
        self.with(|i| {
            for (name, v) in &snap.counters {
                *i.counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, v) in &snap.gauges {
                i.gauges.insert(name.clone(), *v);
            }
            for (name, h) in &snap.histograms {
                i.histograms.entry(name.clone()).or_default().merge(h);
            }
        });
    }
}

/// A point-in-time copy of a registry's state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Histogram, if any value was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Deterministic textual rendering (sorted by name within each kind).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter   {k} = {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge     {k} = {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {k} = count {} / sum {}us / mean {}us",
                h.count,
                h.sum_us,
                h.mean_us()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_empty_and_inert() {
        let m = MetricsRegistry::disabled();
        m.incr("a");
        m.add("a", 5);
        m.set_gauge("g", 7);
        m.observe_micros("h", 100);
        assert!(!m.is_enabled());
        let snap = m.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
        assert_eq!(snap.counter("a"), 0);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("q.total");
        m.add("q.total", 2);
        m.add("q.total", 0); // no-op, must not create churn
        m.set_gauge("cnf_vars", 10);
        m.set_gauge("cnf_vars", 20);
        m.observe_micros("lat", 3); // bucket 0 (<4us)
        m.observe_micros("lat", 4); // bucket 1
        m.observe_micros("lat", 1_000_000); // ~4^10
        let snap = m.snapshot();
        assert_eq!(snap.counter("q.total"), 3);
        assert_eq!(snap.gauge("cnf_vars"), Some(20));
        let h = snap.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_us, 1_000_007);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
    }

    #[test]
    fn overflow_lands_in_last_bucket() {
        let m = MetricsRegistry::new();
        m.observe_micros("lat", u64::MAX);
        let snap = m.snapshot();
        assert_eq!(snap.histogram("lat").unwrap().buckets[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let m = MetricsRegistry::new();
        m.incr("z.last");
        m.incr("a.first");
        m.set_gauge("mid", 1);
        m.observe(std::stringify!(lat), Duration::from_micros(10));
        let r1 = m.render();
        let r2 = m.render();
        assert_eq!(r1, r2);
        let a = r1.find("a.first").unwrap();
        let z = r1.find("z.last").unwrap();
        assert!(a < z);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let m = MetricsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.incr("shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.snapshot().counter("shared"), 4000);
    }
}
