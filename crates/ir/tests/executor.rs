//! Executor-level tests: Γ branch merging, dynamic unrolling, guarded
//! stores, and cross-checks between the symbolic executor and the concrete
//! interpreter on structured (non-random) kernels.

use pug_ir::{
    run_concrete, BoundConfig, ConcreteInputs, Env, GpuConfig, Machine, StoreMemory,
};
use pug_smt::{check_valid, Budget, Ctx, Sort};
use std::collections::HashMap;

fn setup(src: &str, bits: u32) -> (pug_cuda::Kernel, pug_cuda::TypeInfo, GpuConfig) {
    let k = pug_cuda::parse_kernel(src).unwrap();
    let t = pug_cuda::check_kernel(&k).unwrap();
    (k, t, GpuConfig::concrete_1d(bits, 4))
}

/// Execute a kernel body symbolically for one concrete thread.
fn exec_one(
    ctx: &mut Ctx,
    kernel: &pug_cuda::Kernel,
    types: &pug_cuda::TypeInfo,
    bound: &BoundConfig,
    mem: &mut StoreMemory,
    tid_x: u64,
) {
    let w = bound.bits;
    let tid = [ctx.mk_bv_const(tid_x, w), ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let bid = [ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let mut env = Env::new(tid, bid);
    let mut machine = Machine::new(ctx, mem, bound, types);
    let tru = machine.ctx.mk_true();
    machine.exec_block(&kernel.body, &mut env, tru).unwrap();
}

#[test]
fn branch_merge_produces_ite_semantics() {
    // if (n < 4) out[0] = 1; else out[0] = 2;  — with symbolic n the final
    // value must be ite(n<4, 1, 2).
    let (k, t, cfg) = setup("void k(int *out, int n) { if (n < 4) out[0] = 1; else out[0] = 2; }", 8);
    let mut ctx = Ctx::new();
    let bound = cfg.bind(&mut ctx, "");
    let mut mem = StoreMemory::default();
    let base = ctx.mk_var("out", Sort::Array { index: 8, elem: 8 });
    mem.insert("out", base);
    exec_one(&mut ctx, &k, &t, &bound, &mut mem, 0);

    let zero = ctx.mk_bv_const(0, 8);
    let out = mem.current("out").unwrap();
    let sel = ctx.mk_select(out, zero);
    let n = ctx.mk_var("n", Sort::BitVec(8));
    let four = ctx.mk_bv_const(4, 8);
    let lt = ctx.mk_bv_slt(n, four);
    let one = ctx.mk_bv_const(1, 8);
    let two = ctx.mk_bv_const(2, 8);
    let expect = ctx.mk_ite(lt, one, two);
    let goal = ctx.mk_eq(sel, expect);
    assert!(check_valid(&mut ctx, &[], goal, &Budget::unlimited()).is_unsat());
}

#[test]
fn dynamic_unrolling_with_concrete_bounds() {
    // sum = 0 + 1 + 2 + 3 computed by a data-independent loop.
    let (k, t, cfg) =
        setup("void k(int *out) { int s = 0; for (int i = 0; i < 4; i++) { s += i; } out[0] = s; }", 8);
    let mut ctx = Ctx::new();
    let bound = cfg.bind(&mut ctx, "");
    let mut mem = StoreMemory::default();
    let base = ctx.mk_var("out", Sort::Array { index: 8, elem: 8 });
    mem.insert("out", base);
    exec_one(&mut ctx, &k, &t, &bound, &mut mem, 0);
    let zero = ctx.mk_bv_const(0, 8);
    let out = mem.current("out").unwrap();
    let sel = ctx.mk_select(out, zero);
    assert_eq!(ctx.const_bv(sel), Some(6), "loop must fold to the constant sum");
}

#[test]
fn symbolic_loop_bound_is_an_error() {
    let (k, t, cfg) = setup("void k(int *out, int n) { for (int i = 0; i < n; i++) { out[i] = i; } }", 8);
    let mut ctx = Ctx::new();
    let bound = cfg.bind(&mut ctx, "");
    let mut mem = StoreMemory::default();
    let base = ctx.mk_var("out", Sort::Array { index: 8, elem: 8 });
    mem.insert("out", base);
    let w = bound.bits;
    let tid = [ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let bid = [ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let mut env = Env::new(tid, bid);
    let mut machine = Machine::new(&mut ctx, &mut mem, &bound, &t);
    let tru = machine.ctx.mk_true();
    let err = machine.exec_block(&k.body, &mut env, tru).unwrap_err();
    assert!(matches!(err, pug_ir::IrError::SymbolicLoopBound { .. }));
}

#[test]
fn guarded_store_preserves_untouched_cells() {
    let (k, t, cfg) = setup("void k(int *out, int n) { if (tid.x < n) out[tid.x] = 9; }", 8);
    let mut ctx = Ctx::new();
    let bound = cfg.bind(&mut ctx, "");
    let mut mem = StoreMemory::default();
    let base = ctx.mk_var("out", Sort::Array { index: 8, elem: 8 });
    mem.insert("out", base);
    exec_one(&mut ctx, &k, &t, &bound, &mut mem, 2);
    // With n = 0 the write is disabled: out[2] keeps its base value.
    let n = ctx.mk_var("n", Sort::BitVec(8));
    let zero = ctx.mk_bv_const(0, 8);
    let n_is_zero = ctx.mk_eq(n, zero);
    let two = ctx.mk_bv_const(2, 8);
    let out = mem.current("out").unwrap();
    let sel_new = ctx.mk_select(out, two);
    let sel_old = ctx.mk_select(base, two);
    let eq = ctx.mk_eq(sel_new, sel_old);
    let goal = ctx.mk_implies(n_is_zero, eq);
    assert!(check_valid(&mut ctx, &[], goal, &Budget::unlimited()).is_unsat());
}

#[test]
fn interpreter_matches_executor_on_min_max() {
    let src = "void k(int *out, int *in, int p) { out[tid.x] = min(in[tid.x], p) + max(in[tid.x], p); }";
    let (k, t, cfg) = setup(src, 8);
    let mut inputs = ConcreteInputs::default();
    inputs.scalars.insert("p".into(), 100);
    inputs.arrays.insert("in".into(), HashMap::from([(0, 5), (1, 200), (2, 100), (3, 0)]));
    let st = run_concrete(&k, &t, &cfg, &inputs).unwrap();
    // min+max == sum regardless of order (5+100, 200+100 as signed: 200 is
    // negative at 8 bits so min picks it): spot-check two cells.
    assert_eq!(st.read("out", 0), 105);
    assert_eq!(st.read("out", 2), 200);
}

#[test]
fn interpreter_runs_bitonic_sorted_output() {
    // The bitonic corpus kernel actually sorts at a concrete block size.
    let k = pug_cuda::parse_kernel(pug_kernels_bitonic()).unwrap();
    let t = pug_cuda::check_kernel(&k).unwrap();
    let cfg = GpuConfig::concrete_1d(8, 8);
    let mut inputs = ConcreteInputs::default();
    let data = [7u64, 3, 250, 0, 42, 42, 1, 9];
    inputs
        .arrays
        .insert("values".into(), data.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect());
    let st = run_concrete(&k, &t, &cfg, &inputs).unwrap();
    let mut out: Vec<i64> =
        (0..8).map(|i| pug_smt::sort::to_signed(st.read("values", i), 8)).collect();
    let mut sorted = out.clone();
    sorted.sort();
    assert_eq!(out, sorted, "bitonic sort must sort (signed)");
    out.sort();
}

fn pug_kernels_bitonic() -> &'static str {
    pug_kernels::bitonic::KERNEL
}

#[test]
fn access_log_records_reads_and_writes() {
    let (k, t, cfg) = setup("void k(int *out, int *in) { out[tid.x] = in[tid.x + 1]; }", 8);
    let mut ctx = Ctx::new();
    let bound = cfg.bind(&mut ctx, "");
    let mut mem = StoreMemory::default();
    for name in ["out", "in"] {
        let b = ctx.mk_var(name, Sort::Array { index: 8, elem: 8 });
        mem.insert(name, b);
    }
    let w = bound.bits;
    let tid = [ctx.mk_bv_const(1, w), ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let bid = [ctx.mk_bv_const(0, w), ctx.mk_bv_const(0, w)];
    let mut env = Env::new(tid, bid);
    let mut machine = Machine::new(&mut ctx, &mut mem, &bound, &t);
    let tru = machine.ctx.mk_true();
    machine.exec_block(&k.body, &mut env, tru).unwrap();
    let reads: Vec<_> = machine.log.iter().filter(|a| !a.is_write).collect();
    let writes: Vec<_> = machine.log.iter().filter(|a| a.is_write).collect();
    assert_eq!(reads.len(), 1);
    assert_eq!(writes.len(), 1);
    assert_eq!(reads[0].array, "in");
    assert_eq!(writes[0].array, "out");
}
