//! Loop alignment (paper §IV-E).
//!
//! Typical CUDA optimizations (memory coalescing, bank-conflict elimination)
//! preserve loop structure, so PUGpara compares loop *bodies* under a single
//! symbolic iteration variable instead of unrolling. That needs the two loop
//! headers to be normalized to the same iteration space. The paper's
//! motivating pair is the reduction kernel:
//!
//! ```text
//! for (k = bdim.x/2; k > 0; k >>= 1)   // modulo-free, descending
//! for (k = 1; k < bdim.x; k *= 2)      // naive,       ascending
//! ```
//!
//! Both iterate k over the powers of two below `bdim.x` (when `bdim.x` is a
//! power of two) — in opposite orders, which is sound to ignore only when
//! the combining operation is commutative and associative (`+=` in the
//! corpus). This module recognizes geometric and linear headers, normalizes
//! them, and reports whether two headers align and at what cost.

use pug_cuda::ast::{BinOp, Expr, Stmt};

/// Normalized iteration spaces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoopSpace {
    /// `k = start; k < bound; k *= ratio` (ascending geometric).
    GeometricUp { start: Expr, bound: Expr, ratio: u64 },
    /// `k = start; k > 0; k /= ratio` (descending geometric).
    GeometricDown { start: Expr, ratio: u64 },
    /// `k = start; k < bound (or <=); k += step`.
    LinearUp { start: Expr, bound: Expr, step: u64, inclusive: bool },
    /// `k = start; k < bound (or <=); k += step` with a *symbolic* step
    /// (e.g. the grid-stride idiom `i += bdim.x`). Only checkers with a
    /// Presburger-capable membership encoding can use this space; others
    /// must treat it like an unrecognized header.
    LinearUpSym { start: Expr, bound: Expr, step: Expr, inclusive: bool },
}

/// A normalized loop header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Header {
    /// The loop variable.
    pub var: String,
    pub space: LoopSpace,
}

/// How two loops align.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Alignment {
    /// Identical iteration spaces traversed in the same order.
    SameOrder,
    /// Same iteration *set* traversed in opposite orders; sound only for
    /// commutative-associative accumulation, and only when `pow2_bound` is a
    /// power of two (added as a verification-side assumption).
    Reversed { pow2_bound: Expr },
}

/// Extract and normalize a `for` header. Returns `None` when the header is
/// outside the recognized forms (the caller falls back to full unrolling).
pub fn normalize_header(init: &Stmt, cond: &Expr, update: &Stmt) -> Option<Header> {
    let (var, start) = match init {
        Stmt::Decl { name, init: Some(e), dims, .. } if dims.is_empty() => (name.clone(), e.clone()),
        Stmt::Assign { lhs, op: None, rhs, .. } if lhs.indices.is_empty() => {
            (lhs.name.clone(), rhs.clone())
        }
        _ => return None,
    };
    let (upd_op, upd_rhs) = match update {
        Stmt::Assign { lhs, op: Some(op), rhs, .. }
            if lhs.name == var && lhs.indices.is_empty() =>
        {
            (*op, rhs)
        }
        _ => return None,
    };
    match upd_op {
        // k *= r  or  k <<= s
        BinOp::Mul | BinOp::Shl => {
            let step_const = const_of(upd_rhs)?;
            let ratio = if upd_op == BinOp::Shl { 1u64.checked_shl(step_const as u32)? } else { step_const };
            if ratio < 2 {
                return None;
            }
            let (bound, strict) = upper_bound(cond, &var)?;
            if !strict {
                return None;
            }
            Some(Header { var, space: LoopSpace::GeometricUp { start, bound, ratio } })
        }
        // k /= r  or  k >>= s
        BinOp::Div | BinOp::Shr => {
            let step_const = const_of(upd_rhs)?;
            let ratio = if upd_op == BinOp::Shr { 1u64.checked_shl(step_const as u32)? } else { step_const };
            if ratio < 2 {
                return None;
            }
            // condition must be k > 0 (or k >= 1)
            if !is_positive_guard(cond, &var) {
                return None;
            }
            Some(Header { var, space: LoopSpace::GeometricDown { start, ratio } })
        }
        // k += c  (constant step)  or  k += e  (symbolic step)
        BinOp::Add => {
            let (bound, strict) = upper_bound(cond, &var)?;
            let space = match const_of(upd_rhs) {
                Some(step_const) => {
                    LoopSpace::LinearUp { start, bound, step: step_const, inclusive: !strict }
                }
                None => LoopSpace::LinearUpSym {
                    start,
                    bound,
                    step: upd_rhs.clone(),
                    inclusive: !strict,
                },
            };
            Some(Header { var, space })
        }
        _ => None,
    }
}

/// Decide whether two normalized headers describe the same iteration space.
pub fn align_headers(a: &Header, b: &Header) -> Option<Alignment> {
    if a.space == b.space {
        return Some(Alignment::SameOrder);
    }
    // Ascending {start=1, <bound, ×r} vs descending {start=bound/r, ÷r}:
    // both are the powers of r below bound when bound is a power of r.
    let matched = |up: &LoopSpace, down: &LoopSpace| -> Option<Expr> {
        let LoopSpace::GeometricUp { start, bound, ratio } = up else { return None };
        let LoopSpace::GeometricDown { start: dstart, ratio: dratio } = down else { return None };
        if ratio != dratio || const_of(start) != Some(1) {
            return None;
        }
        if is_quotient_of(dstart, bound, *ratio) {
            Some(bound.clone())
        } else {
            None
        }
    };
    if let Some(bound) = matched(&a.space, &b.space).or_else(|| matched(&b.space, &a.space)) {
        return Some(Alignment::Reversed { pow2_bound: bound });
    }
    None
}

fn const_of(e: &Expr) -> Option<u64> {
    match e {
        Expr::Int(n) => Some(*n),
        _ => None,
    }
}

/// Match `var < e` / `var <= e` / `e > var` / `e >= var`; returns
/// (bound, strict).
fn upper_bound(cond: &Expr, var: &str) -> Option<(Expr, bool)> {
    let Expr::Binary { op, lhs, rhs } = cond else { return None };
    let is_var = |e: &Expr| matches!(e, Expr::Ident(n) if n == var);
    match op {
        BinOp::Lt if is_var(lhs) => Some(((**rhs).clone(), true)),
        BinOp::Le if is_var(lhs) => Some(((**rhs).clone(), false)),
        BinOp::Gt if is_var(rhs) => Some(((**lhs).clone(), true)),
        BinOp::Ge if is_var(rhs) => Some(((**lhs).clone(), false)),
        _ => None,
    }
}

/// Match `var > 0` or `var >= 1`.
fn is_positive_guard(cond: &Expr, var: &str) -> bool {
    let Expr::Binary { op, lhs, rhs } = cond else { return false };
    let is_var = |e: &Expr| matches!(e, Expr::Ident(n) if n == var);
    match op {
        BinOp::Gt => is_var(lhs) && const_of(rhs) == Some(0),
        BinOp::Ge => is_var(lhs) && const_of(rhs) == Some(1),
        BinOp::Lt => is_var(rhs) && const_of(lhs) == Some(0),
        _ => false,
    }
}

/// Does `e` syntactically equal `bound / ratio` (or the shift equivalent)?
fn is_quotient_of(e: &Expr, bound: &Expr, ratio: u64) -> bool {
    let Expr::Binary { op, lhs, rhs } = e else { return false };
    if **lhs != *bound {
        return false;
    }
    match op {
        BinOp::Div => const_of(rhs) == Some(ratio),
        BinOp::Shr => const_of(rhs).map(|s| 1u64 << s) == Some(ratio),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_cuda::parser::parse_kernel;

    fn header_of(src: &str) -> Header {
        let k = parse_kernel(src).unwrap();
        let Stmt::For { init, cond, update, .. } = &k.body[0] else { panic!("expected for") };
        normalize_header(init, cond, update).expect("normalizable")
    }

    #[test]
    fn ascending_pow2() {
        let h = header_of("void k(int *d) { for (unsigned int s = 1; s < bdim.x; s *= 2) { d[s] = 0; } }");
        assert!(matches!(h.space, LoopSpace::GeometricUp { ratio: 2, .. }));
    }

    #[test]
    fn descending_shift() {
        let h = header_of(
            "void k(int *d) { for (unsigned int s = bdim.x / 2; s > 0; s >>= 1) { d[s] = 0; } }",
        );
        assert!(matches!(h.space, LoopSpace::GeometricDown { ratio: 2, .. }));
    }

    #[test]
    fn paper_reduction_pair_aligns_reversed() {
        let up = header_of(
            "void k(int *d) { for (unsigned int s = 1; s < bdim.x; s *= 2) { d[s] = 0; } }",
        );
        let down = header_of(
            "void k(int *d) { for (unsigned int s = bdim.x / 2; s > 0; s >>= 1) { d[s] = 0; } }",
        );
        let al = align_headers(&up, &down).expect("aligns");
        assert!(matches!(al, Alignment::Reversed { .. }));
        // and alignment is symmetric
        assert_eq!(align_headers(&down, &up), Some(al));
    }

    #[test]
    fn identical_linear_headers_align_same_order() {
        let a = header_of("void k(int *d) { for (int i = 0; i < bdim.x; i += 1) { d[i] = 0; } }");
        let b = header_of("void k(int *d) { for (int i = 0; i < bdim.x; i += 1) { d[i] = 1; } }");
        assert_eq!(align_headers(&a, &b), Some(Alignment::SameOrder));
    }

    #[test]
    fn symbolic_stride_header_normalizes_and_aligns() {
        let a = header_of(
            "void k(int *d) { for (unsigned int i = 0; i < bdim.x * 4; i += bdim.x) { d[i] = 0; } }",
        );
        assert!(matches!(a.space, LoopSpace::LinearUpSym { .. }));
        let b = header_of(
            "void k(int *d) { for (unsigned int i = 0; i < bdim.x * 4; i += bdim.x) { d[i] = 1; } }",
        );
        assert_eq!(align_headers(&a, &b), Some(Alignment::SameOrder));
    }

    #[test]
    fn different_ratios_do_not_align() {
        let a = header_of("void k(int *d) { for (int s = 1; s < bdim.x; s *= 2) { d[s] = 0; } }");
        let b = header_of("void k(int *d) { for (int s = 1; s < bdim.x; s *= 4) { d[s] = 0; } }");
        assert_eq!(align_headers(&a, &b), None);
    }

    #[test]
    fn different_bounds_do_not_align() {
        let a = header_of("void k(int *d) { for (int s = 1; s < bdim.x; s *= 2) { d[s] = 0; } }");
        let b = header_of("void k(int *d) { for (int s = 1; s < bdim.y; s *= 2) { d[s] = 0; } }");
        assert_eq!(align_headers(&a, &b), None);
    }
}
