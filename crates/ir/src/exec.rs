//! Symbolic execution of barrier-interval bodies.
//!
//! One [`Machine`] executes straight-line (barrier-free) statement lists for
//! one thread whose coordinates are bound in its [`Env`]. Branches are
//! *merged*, not forked: both arms execute on cloned environments and the
//! locals are joined with `ite` — exactly the paper's Γ translation of
//! conditionals (§III-A). Loops are unrolled on the fly when their condition
//! folds to a constant; a symbolic bound raises
//! [`IrError::SymbolicLoopBound`], which the verifier answers with loop
//! alignment (§IV-E) or concretization ("+C.").
//!
//! Shared/global memory goes through the [`Memory`] trait so the two
//! encoders can plug in different models: the non-parameterized encoder uses
//! [`StoreMemory`] (serialized store chains, §III), the parameterized one a
//! conditional-assignment collector (§IV).

use crate::config::BoundConfig;
use crate::error::IrError;
use pug_cuda::ast::{BinOp, Builtin, Dim, Expr, LValue, Stmt, UnOp};
use pug_cuda::typecheck::{TypeInfo, VarInfo};
use pug_smt::{Ctx, Sort, TermId};
use std::collections::HashMap;

/// Memory model plugged into the executor.
pub trait Memory {
    /// Read `array[index]` under `guard` (the current path condition).
    fn read(&mut self, ctx: &mut Ctx, array: &str, index: TermId, guard: TermId) -> TermId;
    /// Write `array[index] = value` under `guard`.
    fn write(&mut self, ctx: &mut Ctx, array: &str, index: TermId, value: TermId, guard: TermId);
}

/// A typed symbolic value: Bool or bit-vector with C signedness.
#[derive(Clone, Copy, Debug)]
pub enum Val {
    Bool(TermId),
    Bv { term: TermId, signed: bool },
}

impl Val {
    /// Coerce to a Boolean term (`x != 0` for bit-vectors).
    pub fn as_bool(self, ctx: &mut Ctx) -> TermId {
        match self {
            Val::Bool(t) => t,
            Val::Bv { term, .. } => {
                let w = ctx.width(term);
                let zero = ctx.mk_bv_const(0, w);
                ctx.mk_neq(term, zero)
            }
        }
    }

    /// Coerce to a bit-vector term (`ite(b, 1, 0)` for Booleans).
    pub fn as_bv(self, ctx: &mut Ctx, width: u32) -> TermId {
        match self {
            Val::Bv { term, .. } => term,
            Val::Bool(b) => {
                let one = ctx.mk_bv_const(1, width);
                let zero = ctx.mk_bv_const(0, width);
                ctx.mk_ite(b, one, zero)
            }
        }
    }

    fn signed(self) -> bool {
        match self {
            Val::Bool(_) => false,
            Val::Bv { signed, .. } => signed,
        }
    }
}

/// Per-thread execution environment: thread coordinates and scalar locals.
#[derive(Clone, Debug)]
pub struct Env {
    /// `tid.x/y/z` terms for this thread.
    pub tid: [TermId; 3],
    /// `bid.x/y` terms for this thread's block.
    pub bid: [TermId; 2],
    locals: HashMap<String, Val>,
}

impl Env {
    /// Environment for a thread at the given coordinates.
    pub fn new(tid: [TermId; 3], bid: [TermId; 2]) -> Env {
        Env { tid, bid, locals: HashMap::new() }
    }

    /// Current value of a scalar local, if any.
    pub fn local(&self, name: &str) -> Option<Val> {
        self.locals.get(name).copied()
    }

    /// Bind a scalar local.
    pub fn bind(&mut self, name: &str, v: Val) {
        self.locals.insert(name.to_string(), v);
    }
}

/// Obligations and assumptions gathered during execution.
#[derive(Clone, Debug, Default)]
pub struct ExecOutputs {
    /// `assume`/`requires` facts: `path ⇒ cond` terms to be assumed.
    pub assumptions: Vec<TermId>,
    /// `assert` obligations: `path ⇒ cond` terms to be proved.
    pub asserts: Vec<TermId>,
    /// `postcond` terms (free spec variables already bound to fresh symbols).
    pub postconds: Vec<TermId>,
}

/// One logged shared/global memory access (for race / performance checks).
#[derive(Clone, Debug)]
pub struct Access {
    pub array: String,
    pub index: TermId,
    pub is_write: bool,
    pub guard: TermId,
}

/// The symbolic executor.
pub struct Machine<'a, M: Memory> {
    pub ctx: &'a mut Ctx,
    pub mem: &'a mut M,
    pub cfg: &'a BoundConfig,
    pub types: &'a TypeInfo,
    /// Prefix for fresh symbols (uninitialized locals), distinct per thread.
    pub name_prefix: String,
    /// Unroll budget for dynamically unrolled loops.
    pub max_unroll: usize,
    /// Whether `postcond` statements are collected. Postconditions are
    /// global properties, so encoders typically enable this for a single
    /// representative thread to avoid duplicate obligations.
    pub collect_postconds: bool,
    /// Concretized scalar parameters (the paper's "+C."): a parameter named
    /// here binds to the constant instead of a symbolic input, which also
    /// lets data-dependent loops unroll.
    pub concrete_params: HashMap<String, u64>,
    /// Collected spec obligations.
    pub outputs: ExecOutputs,
    /// Every shared/global access, for the race and performance checkers.
    pub log: Vec<Access>,
    /// Dimension extents of multi-dimensional arrays (filled by decls; can be
    /// pre-seeded via [`Machine::seed_array_dims`]).
    array_dims: HashMap<String, Vec<TermId>>,
}

impl<'a, M: Memory> Machine<'a, M> {
    /// New machine over a context, memory model and configuration.
    pub fn new(
        ctx: &'a mut Ctx,
        mem: &'a mut M,
        cfg: &'a BoundConfig,
        types: &'a TypeInfo,
    ) -> Machine<'a, M> {
        Machine {
            ctx,
            mem,
            cfg,
            types,
            name_prefix: String::new(),
            max_unroll: 4096,
            collect_postconds: true,
            concrete_params: HashMap::new(),
            outputs: ExecOutputs::default(),
            log: Vec::new(),
            array_dims: HashMap::new(),
        }
    }

    /// Pre-register a multi-dimensional array's extents (needed when a later
    /// barrier interval is executed without re-running the declaring one).
    pub fn seed_array_dims(&mut self, name: &str, dims: Vec<TermId>) {
        self.array_dims.insert(name.to_string(), dims);
    }

    /// Known extents of an array, if declared with explicit dimensions.
    pub fn array_dims(&self, name: &str) -> Option<&[TermId]> {
        self.array_dims.get(name).map(|v| v.as_slice())
    }

    fn width(&self) -> u32 {
        self.cfg.bits
    }

    /// Execute a (barrier-free) statement list under `path`.
    pub fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env, path: TermId) -> Result<(), IrError> {
        for s in stmts {
            self.exec_stmt(s, env, path)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, env: &mut Env, path: TermId) -> Result<(), IrError> {
        match s {
            Stmt::Nop => Ok(()),
            Stmt::Barrier { .. } => Err(IrError::Internal {
                detail: "barrier reached inside a barrier interval — split_segments must run first"
                    .into(),
            }),
            Stmt::Decl { ty, name, dims, init, .. } => {
                if !dims.is_empty() {
                    // Array declaration: record extents for index flattening.
                    let mut ds = Vec::with_capacity(dims.len());
                    for d in dims {
                        let v = self.eval(d, env, path)?;
                        let w = self.width();
                        ds.push(v.as_bv(self.ctx, w));
                    }
                    self.array_dims.insert(name.clone(), ds);
                    return Ok(());
                }
                let v = match init {
                    Some(e) => {
                        let v = self.eval(e, env, path)?;
                        self.coerce_decl(v, *ty)
                    }
                    None => {
                        // Uninitialized local: fresh symbolic value.
                        let prefix = format!("{}{}", self.name_prefix, name);
                        let w = self.width();
                        let t = self.ctx.fresh_var(&prefix, Sort::BitVec(w));
                        Val::Bv { term: t, signed: ty.is_signed() }
                    }
                };
                env.bind(name, v);
                Ok(())
            }
            Stmt::Assign { lhs, op, rhs, .. } => self.exec_assign(lhs, *op, rhs, env, path),
            Stmt::If { cond, then, els, .. } => {
                let c = self.eval(cond, env, path)?;
                let cb = c.as_bool(self.ctx);
                match self.ctx.const_bool(cb) {
                    Some(true) => self.exec_block(then, env, path),
                    Some(false) => self.exec_block(els, env, path),
                    None => {
                        let then_path = self.ctx.mk_and(path, cb);
                        let ncb = self.ctx.mk_not(cb);
                        let else_path = self.ctx.mk_and(path, ncb);
                        let mut env_t = env.clone();
                        let mut env_e = env.clone();
                        self.exec_block(then, &mut env_t, then_path)?;
                        self.exec_block(els, &mut env_e, else_path)?;
                        // Γ-style merge: synchronize SSA views of the locals.
                        let mut names: Vec<String> = env_t
                            .locals
                            .keys()
                            .chain(env_e.locals.keys())
                            .cloned()
                            .collect();
                        names.sort();
                        names.dedup();
                        for name in names {
                            let tv = env_t.locals.get(&name).copied();
                            let ev = env_e.locals.get(&name).copied();
                            match (tv, ev) {
                                (Some(a), Some(b)) => {
                                    let merged = self.merge_vals(cb, a, b);
                                    env.bind(&name, merged);
                                }
                                // declared in only one arm: scoped to it
                                (Some(_), None) | (None, Some(_)) => {}
                                (None, None) => {}
                            }
                        }
                        Ok(())
                    }
                }
            }
            Stmt::While { cond, body, .. } => {
                for _ in 0..self.max_unroll {
                    let c = self.eval(cond, env, path)?;
                    let cb = c.as_bool(self.ctx);
                    match self.ctx.const_bool(cb) {
                        Some(true) => self.exec_block(body, env, path)?,
                        Some(false) => return Ok(()),
                        None => {
                            return Err(IrError::SymbolicLoopBound {
                                detail: "while condition does not fold to a constant".into(),
                            })
                        }
                    }
                }
                Err(IrError::UnrollBudget { max: self.max_unroll })
            }
            Stmt::For { init, cond, update, body, .. } => {
                self.exec_stmt(init, env, path)?;
                for _ in 0..self.max_unroll {
                    let c = self.eval(cond, env, path)?;
                    let cb = c.as_bool(self.ctx);
                    match self.ctx.const_bool(cb) {
                        Some(true) => {
                            self.exec_block(body, env, path)?;
                            self.exec_stmt(update, env, path)?;
                        }
                        Some(false) => return Ok(()),
                        None => {
                            return Err(IrError::SymbolicLoopBound {
                                detail: "for condition does not fold to a constant".into(),
                            })
                        }
                    }
                }
                Err(IrError::UnrollBudget { max: self.max_unroll })
            }
            Stmt::Assert { cond, .. } => {
                let c = self.eval(cond, env, path)?;
                let cb = c.as_bool(self.ctx);
                let ob = self.ctx.mk_implies(path, cb);
                self.outputs.asserts.push(ob);
                Ok(())
            }
            Stmt::Assume { cond, .. } | Stmt::Requires { cond, .. } => {
                let c = self.eval(cond, env, path)?;
                let cb = c.as_bool(self.ctx);
                let f = self.ctx.mk_implies(path, cb);
                self.outputs.assumptions.push(f);
                Ok(())
            }
            Stmt::Postcond { cond, .. } => {
                if self.collect_postconds {
                    let c = self.eval(cond, env, path)?;
                    let cb = c.as_bool(self.ctx);
                    self.outputs.postconds.push(cb);
                }
                Ok(())
            }
        }
    }

    fn merge_vals(&mut self, cond: TermId, a: Val, b: Val) -> Val {
        match (a, b) {
            (Val::Bool(x), Val::Bool(y)) => Val::Bool(self.ctx.mk_ite(cond, x, y)),
            (x, y) => {
                let w = self.width();
                let xt = x.as_bv(self.ctx, w);
                let yt = y.as_bv(self.ctx, w);
                Val::Bv {
                    term: self.ctx.mk_ite(cond, xt, yt),
                    signed: x.signed() && y.signed(),
                }
            }
        }
    }

    fn coerce_decl(&mut self, v: Val, ty: pug_cuda::Scalar) -> Val {
        let w = self.width();
        match ty {
            pug_cuda::Scalar::Bool => Val::Bool(v.as_bool(self.ctx)),
            t => Val::Bv { term: v.as_bv(self.ctx, w), signed: t.is_signed() },
        }
    }

    fn exec_assign(
        &mut self,
        lhs: &LValue,
        op: Option<BinOp>,
        rhs: &Expr,
        env: &mut Env,
        path: TermId,
    ) -> Result<(), IrError> {
        let rv = self.eval(rhs, env, path)?;
        match self.types.vars.get(&lhs.name) {
            Some(VarInfo::Scalar { ty, .. }) => {
                let new = match op {
                    None => self.coerce_decl(rv, *ty),
                    Some(bop) => {
                        let old = self.lookup_scalar(&lhs.name, *ty, env);
                        self.apply_binop(bop, old, rv)?
                    }
                };
                let new = self.coerce_decl(new, *ty);
                env.bind(&lhs.name, new);
                Ok(())
            }
            Some(VarInfo::GlobalArray { elem })
            | Some(VarInfo::SharedArray { elem, .. })
            | Some(VarInfo::LocalArray { elem, .. }) => {
                let elem_signed = elem.is_signed();
                let idx = self.flatten_index(&lhs.name, &lhs.indices, env, path)?;
                let w = self.width();
                let value = match op {
                    None => rv.as_bv(self.ctx, w),
                    Some(bop) => {
                        let raw = self.mem.read(self.ctx, &lhs.name, idx, path);
                        self.log.push(Access {
                            array: lhs.name.clone(),
                            index: idx,
                            is_write: false,
                            guard: path,
                        });
                        let old = Val::Bv { term: raw, signed: elem_signed };
                        let new = self.apply_binop(bop, old, rv)?;
                        new.as_bv(self.ctx, w)
                    }
                };
                self.mem.write(self.ctx, &lhs.name, idx, value, path);
                self.log.push(Access {
                    array: lhs.name.clone(),
                    index: idx,
                    is_write: true,
                    guard: path,
                });
                Ok(())
            }
            None => Err(IrError::Internal { detail: format!("assignment to unknown `{}`", lhs.name) }),
        }
    }

    fn lookup_scalar(&mut self, name: &str, ty: pug_cuda::Scalar, env: &mut Env) -> Val {
        if let Some(v) = env.local(name) {
            return v;
        }
        // Kernel parameter or implicitly-quantified spec variable: bind a
        // symbolic input named after the variable itself (shared across the
        // whole query so both kernels of an equivalence check see the same
        // input values when the encoder arranges equal names).
        let w = self.width();
        if let Some(&v) = self.concrete_params.get(name) {
            let t = self.ctx.mk_bv_const(v, w);
            let val = Val::Bv { term: t, signed: ty.is_signed() };
            env.bind(name, val);
            return val;
        }
        let is_param = matches!(self.types.vars.get(name), Some(VarInfo::Scalar { is_param: true, .. }));
        let symbol = if is_param {
            format!("{}{name}", self.param_prefix())
        } else {
            name.to_string()
        };
        let t = self.ctx.mk_var(&symbol, Sort::BitVec(w));
        let v = Val::Bv { term: t, signed: ty.is_signed() };
        env.bind(name, v);
        v
    }

    /// Prefix for kernel-parameter symbols; empty so parameters are shared
    /// by name across kernels (equivalence checking needs `width`, `height`
    /// etc. to be the *same* symbols in both kernels).
    fn param_prefix(&self) -> &str {
        ""
    }

    /// Flatten (possibly multi-dimensional) indices to a single address term
    /// using the declared extents: `a[i][j] → i * dim1 + j`.
    fn flatten_index(
        &mut self,
        name: &str,
        indices: &[Expr],
        env: &mut Env,
        path: TermId,
    ) -> Result<TermId, IrError> {
        let w = self.width();
        let mut terms = Vec::with_capacity(indices.len());
        for e in indices {
            let v = self.eval(e, env, path)?;
            terms.push(v.as_bv(self.ctx, w));
        }
        if terms.len() == 1 {
            return Ok(terms[0]);
        }
        let dims = self.array_dims.get(name).cloned().ok_or_else(|| IrError::Internal {
            detail: format!("array `{name}` used before its declaration"),
        })?;
        if dims.len() != terms.len() {
            return Err(IrError::Internal { detail: format!("index arity mismatch on `{name}`") });
        }
        // Horner: ((i0 * d1 + i1) * d2 + i2) …
        let mut acc = terms[0];
        for k in 1..terms.len() {
            let scaled = self.ctx.mk_bv_mul(acc, dims[k]);
            acc = self.ctx.mk_bv_add(scaled, terms[k]);
        }
        Ok(acc)
    }

    /// Evaluate an expression to a typed symbolic value.
    pub fn eval(&mut self, e: &Expr, env: &mut Env, path: TermId) -> Result<Val, IrError> {
        let w = self.width();
        match e {
            Expr::Int(n) => Ok(Val::Bv { term: self.ctx.mk_bv_const(*n, w), signed: true }),
            Expr::Bool(b) => Ok(Val::Bool(self.ctx.mk_bool(*b))),
            Expr::Builtin(b) => Ok(Val::Bv { term: self.builtin_term(*b, env), signed: false }),
            Expr::Ident(name) => match self.types.vars.get(name).cloned() {
                Some(VarInfo::Scalar { ty, .. }) => Ok(self.lookup_scalar(name, ty, env)),
                _ => Err(IrError::Internal { detail: format!("non-scalar `{name}` in expression") }),
            },
            Expr::Index { base, indices } => {
                let elem_signed = match self.types.vars.get(base) {
                    Some(VarInfo::GlobalArray { elem })
                    | Some(VarInfo::SharedArray { elem, .. })
                    | Some(VarInfo::LocalArray { elem, .. }) => elem.is_signed(),
                    _ => {
                        return Err(IrError::Internal {
                            detail: format!("indexed non-array `{base}`"),
                        })
                    }
                };
                let idx = self.flatten_index(base, indices, env, path)?;
                let t = self.mem.read(self.ctx, base, idx, path);
                self.log.push(Access {
                    array: base.clone(),
                    index: idx,
                    is_write: false,
                    guard: path,
                });
                Ok(Val::Bv { term: t, signed: elem_signed })
            }
            Expr::Unary { op, arg } => {
                let v = self.eval(arg, env, path)?;
                match op {
                    UnOp::Not => {
                        let b = v.as_bool(self.ctx);
                        Ok(Val::Bool(self.ctx.mk_not(b)))
                    }
                    UnOp::Neg => {
                        let t = v.as_bv(self.ctx, w);
                        Ok(Val::Bv { term: self.ctx.mk_bv_neg(t), signed: true })
                    }
                    UnOp::BitNot => {
                        let t = v.as_bv(self.ctx, w);
                        Ok(Val::Bv { term: self.ctx.mk_bv_not(t), signed: v.signed() })
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, env, path)?;
                let b = self.eval(rhs, env, path)?;
                self.apply_binop(*op, a, b)
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.eval(cond, env, path)?;
                let cb = c.as_bool(self.ctx);
                let t = self.eval(then, env, path)?;
                let e2 = self.eval(els, env, path)?;
                Ok(self.merge_vals(cb, t, e2))
            }
            Expr::Call { name, args } => {
                let a = self.eval(&args[0], env, path)?;
                let b = self.eval(&args[1], env, path)?;
                let signed = a.signed() && b.signed();
                let at = a.as_bv(self.ctx, w);
                let bt = b.as_bv(self.ctx, w);
                let lt = if signed {
                    self.ctx.mk_bv_slt(at, bt)
                } else {
                    self.ctx.mk_bv_ult(at, bt)
                };
                let term = match name.as_str() {
                    "min" => self.ctx.mk_ite(lt, at, bt),
                    "max" => self.ctx.mk_ite(lt, bt, at),
                    other => {
                        return Err(IrError::Unsupported { detail: format!("call to `{other}`") })
                    }
                };
                Ok(Val::Bv { term, signed })
            }
        }
    }

    fn builtin_term(&self, b: Builtin, env: &Env) -> TermId {
        fn dim_ix(d: Dim) -> usize {
            match d {
                Dim::X => 0,
                Dim::Y => 1,
                Dim::Z => 2,
            }
        }
        match b {
            Builtin::Tid(d) => env.tid[dim_ix(d)],
            Builtin::Bid(d) => env.bid[dim_ix(d).min(1)],
            Builtin::Bdim(d) => self.cfg.bdim[dim_ix(d)],
            Builtin::Gdim(d) => self.cfg.gdim[dim_ix(d).min(1)],
        }
    }

    fn apply_binop(&mut self, op: BinOp, a: Val, b: Val) -> Result<Val, IrError> {
        let ctx = &mut *self.ctx;
        let w = self.cfg.bits;
        // Boolean connectives.
        match op {
            BinOp::And => {
                let (x, y) = (a.as_bool(ctx), b.as_bool(ctx));
                return Ok(Val::Bool(ctx.mk_and(x, y)));
            }
            BinOp::Or => {
                let (x, y) = (a.as_bool(ctx), b.as_bool(ctx));
                return Ok(Val::Bool(ctx.mk_or(x, y)));
            }
            BinOp::Imp => {
                let (x, y) = (a.as_bool(ctx), b.as_bool(ctx));
                return Ok(Val::Bool(ctx.mk_implies(x, y)));
            }
            _ => {}
        }
        // Equality over Booleans stays Boolean.
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            if let (Val::Bool(x), Val::Bool(y)) = (a, b) {
                let eq = ctx.mk_eq(x, y);
                return Ok(Val::Bool(if op == BinOp::Ne { ctx.mk_not(eq) } else { eq }));
            }
        }
        let signed = a.signed() && b.signed();
        let x = a.as_bv(ctx, w);
        let y = b.as_bv(ctx, w);
        let out = match op {
            BinOp::Add => Val::Bv { term: ctx.mk_bv_add(x, y), signed },
            BinOp::Sub => Val::Bv { term: ctx.mk_bv_sub(x, y), signed },
            BinOp::Mul => Val::Bv { term: ctx.mk_bv_mul(x, y), signed },
            BinOp::Div => {
                if signed {
                    Val::Bv { term: signed_div(ctx, x, y).0, signed }
                } else {
                    Val::Bv { term: ctx.mk_bv_udiv(x, y), signed }
                }
            }
            BinOp::Rem => {
                if signed {
                    Val::Bv { term: signed_div(ctx, x, y).1, signed }
                } else {
                    Val::Bv { term: ctx.mk_bv_urem(x, y), signed }
                }
            }
            BinOp::BitAnd => Val::Bv { term: ctx.mk_bv_and(x, y), signed },
            BinOp::BitOr => Val::Bv { term: ctx.mk_bv_or(x, y), signed },
            BinOp::BitXor => Val::Bv { term: ctx.mk_bv_xor(x, y), signed },
            BinOp::Shl => Val::Bv { term: ctx.mk_bv_shl(x, y), signed },
            BinOp::Shr => {
                // C: arithmetic shift for signed, logical for unsigned.
                let t = if a.signed() { ctx.mk_bv_ashr(x, y) } else { ctx.mk_bv_lshr(x, y) };
                Val::Bv { term: t, signed: a.signed() }
            }
            BinOp::Eq => Val::Bool(ctx.mk_eq(x, y)),
            BinOp::Ne => Val::Bool(ctx.mk_neq(x, y)),
            BinOp::Lt => Val::Bool(if signed { ctx.mk_bv_slt(x, y) } else { ctx.mk_bv_ult(x, y) }),
            BinOp::Le => Val::Bool(if signed { ctx.mk_bv_sle(x, y) } else { ctx.mk_bv_ule(x, y) }),
            BinOp::Gt => Val::Bool(if signed { ctx.mk_bv_slt(y, x) } else { ctx.mk_bv_ult(y, x) }),
            BinOp::Ge => Val::Bool(if signed { ctx.mk_bv_sle(y, x) } else { ctx.mk_bv_ule(y, x) }),
            BinOp::And | BinOp::Or | BinOp::Imp => unreachable!("handled above"),
        };
        Ok(out)
    }
}

/// C99 truncated signed division built from unsigned division:
/// `(sdiv, srem)` with the sign fixes `sdiv = ±(|a| / |b|)`,
/// `srem = sign(a) · (|a| % |b|)`.
pub fn signed_div(ctx: &mut Ctx, a: TermId, b: TermId) -> (TermId, TermId) {
    let w = ctx.width(a);
    let zero = ctx.mk_bv_const(0, w);
    let sa = ctx.mk_bv_slt(a, zero);
    let sb = ctx.mk_bv_slt(b, zero);
    let na = ctx.mk_bv_neg(a);
    let nb = ctx.mk_bv_neg(b);
    let ua = ctx.mk_ite(sa, na, a);
    let ub = ctx.mk_ite(sb, nb, b);
    let q = ctx.mk_bv_udiv(ua, ub);
    let r = ctx.mk_bv_urem(ua, ub);
    let sign_differs = ctx.mk_xor(sa, sb);
    let nq = ctx.mk_bv_neg(q);
    let nr = ctx.mk_bv_neg(r);
    let sdiv = ctx.mk_ite(sign_differs, nq, q);
    let srem = ctx.mk_ite(sa, nr, r);
    (sdiv, srem)
}

/// Store-chain memory: the non-parameterized model of §III. Arrays are SMT
/// array terms; guarded writes become `store(a, i, ite(g, v, a[i]))` so the
/// chain stays array-sorted without array `ite`.
#[derive(Clone, Debug, Default)]
pub struct StoreMemory {
    arrays: HashMap<String, TermId>,
}

impl StoreMemory {
    /// Create with initial array terms (typically fresh array variables).
    pub fn new(arrays: HashMap<String, TermId>) -> StoreMemory {
        StoreMemory { arrays }
    }

    /// Register an array's initial term.
    pub fn insert(&mut self, name: &str, term: TermId) {
        self.arrays.insert(name.to_string(), term);
    }

    /// Current array term (tip of the store chain).
    pub fn current(&self, name: &str) -> Option<TermId> {
        self.arrays.get(name).copied()
    }
}

impl Memory for StoreMemory {
    fn read(&mut self, ctx: &mut Ctx, array: &str, index: TermId, _guard: TermId) -> TermId {
        let a = *self.arrays.get(array).unwrap_or_else(|| panic!("unknown array `{array}`"));
        ctx.mk_select(a, index)
    }

    fn write(&mut self, ctx: &mut Ctx, array: &str, index: TermId, value: TermId, guard: TermId) {
        let a = *self.arrays.get(array).unwrap_or_else(|| panic!("unknown array `{array}`"));
        let stored = match ctx.const_bool(guard) {
            Some(true) => value,
            _ => {
                let old = ctx.mk_select(a, index);
                ctx.mk_ite(guard, value, old)
            }
        };
        let next = ctx.mk_store(a, index, stored);
        self.arrays.insert(array.to_string(), next);
    }
}
