//! Numeric constant evaluation of AST expressions, used to simulate loop
//! headers when unrolling loops that contain barriers (the non-parameterized
//! path needs fully concrete iteration counts).

use pug_cuda::ast::{BinOp, Builtin, Dim, Expr, UnOp};
use pug_smt::sort::{mask, to_signed, truncate};
use std::collections::HashMap;

/// Environment for numeric evaluation: known scalar values plus the concrete
/// parts of the launch configuration. `tid`/`bid` are never known here (they
/// differ per thread), so expressions touching them evaluate to `None`.
#[derive(Clone, Debug)]
pub struct ConstEnv {
    pub bits: u32,
    pub vars: HashMap<String, u64>,
    pub bdim: [Option<u64>; 3],
    pub gdim: [Option<u64>; 2],
}

impl ConstEnv {
    /// Environment with no known variables.
    pub fn new(bits: u32) -> ConstEnv {
        ConstEnv { bits, vars: HashMap::new(), bdim: [None; 3], gdim: [None; 2] }
    }

    /// Environment from a concrete configuration.
    pub fn from_config(cfg: &crate::config::GpuConfig) -> ConstEnv {
        use crate::config::Extent;
        let get = |e: Extent| match e {
            Extent::Const(v) => Some(v),
            Extent::Sym => None,
        };
        ConstEnv {
            bits: cfg.bits,
            vars: HashMap::new(),
            bdim: [get(cfg.bdim[0]), get(cfg.bdim[1]), get(cfg.bdim[2])],
            gdim: [get(cfg.gdim[0]), get(cfg.gdim[1])],
        }
    }

    /// Evaluate to a concrete value if every leaf is known.
    pub fn eval(&self, e: &Expr) -> Option<u64> {
        let w = self.bits;
        let v = match e {
            Expr::Int(n) => truncate(*n, w),
            Expr::Bool(b) => u64::from(*b),
            Expr::Ident(name) => *self.vars.get(name)?,
            Expr::Builtin(b) => match b {
                Builtin::Bdim(d) => self.bdim[dim_ix(*d)]?,
                Builtin::Gdim(d) => self.gdim[dim_ix(*d).min(1)]?,
                Builtin::Tid(_) | Builtin::Bid(_) => return None,
            },
            Expr::Index { .. } => return None,
            Expr::Unary { op, arg } => {
                let a = self.eval(arg)?;
                match op {
                    UnOp::Neg => truncate(a.wrapping_neg(), w),
                    UnOp::Not => u64::from(a == 0),
                    UnOp::BitNot => truncate(!a, w),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                // Loop headers in the corpus use non-negative values; signed
                // comparison via the signed reinterpretation keeps C
                // semantics for the general case.
                let (sa, sb) = (to_signed(a, w), to_signed(b, w));
                match op {
                    BinOp::Add => truncate(a.wrapping_add(b), w),
                    BinOp::Sub => truncate(a.wrapping_sub(b), w),
                    BinOp::Mul => truncate(a.wrapping_mul(b), w),
                    BinOp::Div => {
                        if b == 0 {
                            return None;
                        }
                        truncate((sa / sb) as u64, w)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return None;
                        }
                        truncate((sa % sb) as u64, w)
                    }
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Shl => {
                        if b >= w as u64 {
                            0
                        } else {
                            truncate(a << b, w)
                        }
                    }
                    BinOp::Shr => {
                        if b >= w as u64 {
                            0
                        } else {
                            a >> b
                        }
                    }
                    BinOp::Eq => u64::from(a == b),
                    BinOp::Ne => u64::from(a != b),
                    BinOp::Lt => u64::from(sa < sb),
                    BinOp::Le => u64::from(sa <= sb),
                    BinOp::Gt => u64::from(sa > sb),
                    BinOp::Ge => u64::from(sa >= sb),
                    BinOp::And => u64::from(a != 0 && b != 0),
                    BinOp::Or => u64::from(a != 0 || b != 0),
                    BinOp::Imp => u64::from(a == 0 || b != 0),
                }
            }
            Expr::Ternary { cond, then, els } => {
                if self.eval(cond)? != 0 {
                    self.eval(then)?
                } else {
                    self.eval(els)?
                }
            }
            Expr::Call { name, args } => {
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                let (sa, sb) = (to_signed(a, w), to_signed(b, w));
                match name.as_str() {
                    "min" => {
                        if sa < sb {
                            a
                        } else {
                            b
                        }
                    }
                    "max" => {
                        if sa > sb {
                            a
                        } else {
                            b
                        }
                    }
                    _ => return None,
                }
            }
        };
        Some(v & mask(w))
    }
}

fn dim_ix(d: Dim) -> usize {
    match d {
        Dim::X => 0,
        Dim::Y => 1,
        Dim::Z => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_cuda::parser::parse_expr;

    #[test]
    fn evaluates_loop_bound() {
        let mut env = ConstEnv::new(16);
        env.bdim[0] = Some(8);
        let e = parse_expr("bdim.x / 2").unwrap();
        assert_eq!(env.eval(&e), Some(4));
        let e2 = parse_expr("bdim.x >> 2").unwrap();
        assert_eq!(env.eval(&e2), Some(2));
    }

    #[test]
    fn tid_is_unknown() {
        let env = ConstEnv::new(16);
        let e = parse_expr("tid.x + 1").unwrap();
        assert_eq!(env.eval(&e), None);
    }

    #[test]
    fn wrapping_at_width() {
        let env = ConstEnv::new(8);
        let e = parse_expr("200 + 100").unwrap();
        assert_eq!(env.eval(&e), Some(44));
    }

    #[test]
    fn known_vars() {
        let mut env = ConstEnv::new(16);
        env.vars.insert("k".into(), 4);
        let e = parse_expr("k * 2 < 16").unwrap();
        assert_eq!(env.eval(&e), Some(1));
    }
}
