//! IR-level diagnostics.

use std::fmt;

/// Errors raised while lowering or symbolically executing a kernel.
#[derive(Clone, Debug)]
pub enum IrError {
    /// A loop bound could not be reduced to a constant — the paper's remedy
    /// is concretization ("+C.") or loop alignment (§IV-E).
    SymbolicLoopBound { detail: String },
    /// A loop exceeded the unrolling budget.
    UnrollBudget { max: usize },
    /// `__syncthreads()` under a thread-dependent branch: barrier divergence.
    BarrierDivergence { detail: String },
    /// A feature outside the supported subset.
    Unsupported { detail: String },
    /// Internal invariant violation (indicates a bug in the pipeline).
    Internal { detail: String },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::SymbolicLoopBound { detail } => write!(
                f,
                "loop bound is symbolic ({detail}); concretize inputs (+C) or rely on loop alignment"
            ),
            IrError::UnrollBudget { max } => write!(f, "loop exceeded the unroll budget of {max}"),
            IrError::BarrierDivergence { detail } => {
                write!(f, "barrier divergence: __syncthreads() under a divergent branch ({detail})")
            }
            IrError::Unsupported { detail } => write!(f, "unsupported construct: {detail}"),
            IrError::Internal { detail } => write!(f, "internal error: {detail}"),
        }
    }
}

impl std::error::Error for IrError {}
