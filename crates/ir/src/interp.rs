//! Concrete reference interpreter for kernels under the natural-order
//! schedule.
//!
//! Executes a kernel for a fully concrete configuration and concrete
//! inputs, serializing threads in the same natural order as the
//! non-parameterized encoder (§III): within each barrier interval, thread 0
//! runs first, then thread 1, …. For race-free kernels this is the CUDA
//! semantics; for racy ones it is the canonical schedule the encoders
//! implement. Used as the ground truth for differential testing of the
//! symbolic pipeline.

use crate::config::GpuConfig;
use crate::consteval::ConstEnv;
use crate::error::IrError;
use crate::structure::{split_bis, unroll_barrier_loops};
use pug_cuda::ast::{BinOp, Builtin, Dim, Expr, LValue, Stmt, UnOp};
use pug_cuda::typecheck::{TypeInfo, VarInfo};
use pug_cuda::Kernel;
use pug_smt::sort::{mask, to_signed, truncate};
use std::collections::HashMap;

/// Concrete machine state: array contents (sparse, default 0).
#[derive(Clone, Debug, Default)]
pub struct ConcreteState {
    pub arrays: HashMap<String, HashMap<u64, u64>>,
}

impl ConcreteState {
    /// Read `array[idx]` (default 0).
    pub fn read(&self, array: &str, idx: u64) -> u64 {
        self.arrays.get(array).and_then(|a| a.get(&idx)).copied().unwrap_or(0)
    }

    /// Write `array[idx] = v`.
    pub fn write(&mut self, array: &str, idx: u64, v: u64) {
        self.arrays.entry(array.to_string()).or_default().insert(idx, v);
    }
}

/// Inputs to a concrete run: scalar parameters and initial array contents.
#[derive(Clone, Debug, Default)]
pub struct ConcreteInputs {
    pub scalars: HashMap<String, u64>,
    pub arrays: HashMap<String, HashMap<u64, u64>>,
}

/// One logged array access from a [`run_concrete_logged`] replay: which
/// thread touched which cell of which array, in which barrier interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteAccess {
    pub array: String,
    pub index: u64,
    pub is_write: bool,
    pub tid: [u64; 3],
    pub bid: [u64; 2],
    /// Barrier-interval ordinal (accesses in the same interval are
    /// unordered by any barrier — the race-witness replay keys on this).
    pub bi: usize,
}

/// Run `kernel` concretely; returns the final state. Assumption/assertion
/// statements are ignored (callers choose inputs satisfying them).
pub fn run_concrete(
    kernel: &Kernel,
    types: &TypeInfo,
    cfg: &GpuConfig,
    inputs: &ConcreteInputs,
) -> Result<ConcreteState, IrError> {
    run_impl(kernel, types, cfg, inputs, None)
}

/// [`run_concrete`] plus a full per-thread array access log — the concrete
/// oracle behind the provable-race classification: a witness schedule is
/// only *provable* when this replay exhibits the conflicting accesses.
pub fn run_concrete_logged(
    kernel: &Kernel,
    types: &TypeInfo,
    cfg: &GpuConfig,
    inputs: &ConcreteInputs,
) -> Result<(ConcreteState, Vec<ConcreteAccess>), IrError> {
    let mut log = Vec::new();
    let st = run_impl(kernel, types, cfg, inputs, Some(&mut log))?;
    Ok((st, log))
}

fn run_impl(
    kernel: &Kernel,
    types: &TypeInfo,
    cfg: &GpuConfig,
    inputs: &ConcreteInputs,
    mut log: Option<&mut Vec<ConcreteAccess>>,
) -> Result<ConcreteState, IrError> {
    let w = cfg.bits;
    let cenv = ConstEnv::from_config(cfg);
    let flat = unroll_barrier_loops(&kernel.body, &cenv)?;
    let bis = split_bis(&flat)?;

    let (bx, by, gx, gy) = match (cfg.bdim, cfg.gdim) {
        (
            [crate::Extent::Const(bx), crate::Extent::Const(by), crate::Extent::Const(_)],
            [crate::Extent::Const(gx), crate::Extent::Const(gy)],
        ) => (bx, by, gx, gy),
        _ => {
            return Err(IrError::Unsupported {
                detail: "concrete interpretation needs a fully concrete configuration".into(),
            })
        }
    };

    let mut state = ConcreteState { arrays: inputs.arrays.clone() };
    // Per-thread local environments persist across barrier intervals.
    let mut threads: Vec<Thread> = Vec::new();
    for byy in 0..gy {
        for bxx in 0..gx {
            for tyy in 0..by {
                for txx in 0..bx {
                    threads.push(Thread {
                        tid: [txx, tyy, 0],
                        bid: [bxx, byy],
                        locals: inputs.scalars.clone(),
                        dims: HashMap::new(),
                    });
                }
            }
        }
    }

    for (bi_ix, bi) in bis.iter().enumerate() {
        for t in &mut threads {
            let mut m = Interp {
                w,
                cfg,
                types,
                state: &mut state,
                thread: t,
                bi: bi_ix,
                log: log.as_deref_mut(),
            };
            m.block(bi)?;
        }
    }
    Ok(state)
}

struct Thread {
    tid: [u64; 3],
    bid: [u64; 2],
    locals: HashMap<String, u64>,
    dims: HashMap<String, Vec<u64>>,
}

struct Interp<'a> {
    w: u32,
    cfg: &'a GpuConfig,
    types: &'a TypeInfo,
    state: &'a mut ConcreteState,
    thread: &'a mut Thread,
    bi: usize,
    log: Option<&'a mut Vec<ConcreteAccess>>,
}

impl Interp<'_> {
    fn log_access(&mut self, array: &str, index: u64, is_write: bool) {
        if let Some(log) = self.log.as_deref_mut() {
            log.push(ConcreteAccess {
                array: array.to_string(),
                index,
                is_write,
                tid: self.thread.tid,
                bid: self.thread.bid,
                bi: self.bi,
            });
        }
    }
}

impl Interp<'_> {
    fn block(&mut self, stmts: &[Stmt]) -> Result<(), IrError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), IrError> {
        match s {
            Stmt::Nop | Stmt::Assume { .. } | Stmt::Requires { .. } | Stmt::Assert { .. }
            | Stmt::Postcond { .. } => Ok(()),
            Stmt::Barrier { .. } => Err(IrError::Internal {
                detail: "barrier inside interval during interpretation".into(),
            }),
            Stmt::Decl { name, dims, init, .. } => {
                if !dims.is_empty() {
                    let ds: Result<Vec<u64>, _> = dims.iter().map(|d| self.eval(d)).collect();
                    self.thread.dims.insert(name.clone(), ds?);
                    return Ok(());
                }
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => 0, // uninitialized locals read as zero
                };
                self.thread.locals.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Assign { lhs, op, rhs, .. } => {
                let rv = self.eval(rhs)?;
                match self.types.vars.get(&lhs.name) {
                    Some(VarInfo::Scalar { ty, .. }) => {
                        let new = match op {
                            None => rv,
                            Some(bop) => {
                                let old =
                                    self.thread.locals.get(&lhs.name).copied().unwrap_or(0);
                                self.binop(*bop, old, rv, ty.is_signed())
                            }
                        };
                        self.thread.locals.insert(lhs.name.clone(), truncate(new, self.w));
                        Ok(())
                    }
                    Some(VarInfo::GlobalArray { elem })
                    | Some(VarInfo::SharedArray { elem, .. })
                    | Some(VarInfo::LocalArray { elem, .. }) => {
                        let idx = self.index(lhs)?;
                        let new = match op {
                            None => rv,
                            Some(bop) => {
                                self.log_access(&lhs.name, idx, false);
                                let old = self.state.read(&lhs.name, idx);
                                self.binop(*bop, old, rv, elem.is_signed())
                            }
                        };
                        self.log_access(&lhs.name, idx, true);
                        self.state.write(&lhs.name, idx, truncate(new, self.w));
                        Ok(())
                    }
                    None => Err(IrError::Internal {
                        detail: format!("unknown lvalue `{}`", lhs.name),
                    }),
                }
            }
            Stmt::If { cond, then, els, .. } => {
                if self.eval(cond)? != 0 {
                    self.block(then)
                } else {
                    self.block(els)
                }
            }
            Stmt::While { cond, body, .. } => {
                let mut fuel = 1 << 16;
                while self.eval(cond)? != 0 {
                    self.block(body)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(IrError::UnrollBudget { max: 1 << 16 });
                    }
                }
                Ok(())
            }
            Stmt::For { init, cond, update, body, .. } => {
                self.stmt(init)?;
                let mut fuel = 1 << 16;
                while self.eval(cond)? != 0 {
                    self.block(body)?;
                    self.stmt(update)?;
                    fuel -= 1;
                    if fuel == 0 {
                        return Err(IrError::UnrollBudget { max: 1 << 16 });
                    }
                }
                Ok(())
            }
        }
    }

    fn index(&mut self, lv: &LValue) -> Result<u64, IrError> {
        let idxs: Result<Vec<u64>, _> = lv.indices.iter().map(|e| self.eval(e)).collect();
        let idxs = idxs?;
        if idxs.len() == 1 {
            return Ok(idxs[0]);
        }
        let dims = self.thread.dims.get(&lv.name).cloned().ok_or_else(|| IrError::Internal {
            detail: format!("array `{}` used before declaration", lv.name),
        })?;
        let mut acc = idxs[0];
        for k in 1..idxs.len() {
            acc = truncate(acc.wrapping_mul(dims[k]).wrapping_add(idxs[k]), self.w);
        }
        Ok(acc)
    }

    fn eval(&mut self, e: &Expr) -> Result<u64, IrError> {
        let w = self.w;
        let v = match e {
            Expr::Int(n) => truncate(*n, w),
            Expr::Bool(b) => u64::from(*b),
            Expr::Ident(name) => self.thread.locals.get(name).copied().unwrap_or(0),
            Expr::Builtin(b) => self.builtin(*b),
            Expr::Index { base, indices } => {
                let lv = LValue { name: base.clone(), indices: indices.clone() };
                let idx = self.index(&lv)?;
                self.log_access(base, idx, false);
                self.state.read(base, idx)
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg)?;
                match op {
                    UnOp::Neg => truncate(a.wrapping_neg(), w),
                    UnOp::Not => u64::from(a == 0),
                    UnOp::BitNot => truncate(!a, w),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs)?;
                let b = self.eval(rhs)?;
                // Signedness per the C rules the symbolic lowering applies.
                let signed = self.signedness(lhs) && self.signedness(rhs);
                self.binop(*op, a, b, signed)
            }
            Expr::Ternary { cond, then, els } => {
                if self.eval(cond)? != 0 {
                    self.eval(then)?
                } else {
                    self.eval(els)?
                }
            }
            Expr::Call { name, args } => {
                let a = self.eval(&args[0])?;
                let b = self.eval(&args[1])?;
                let signed = self.signedness(&args[0]) && self.signedness(&args[1]);
                let lt = if signed {
                    to_signed(a, w) < to_signed(b, w)
                } else {
                    a < b
                };
                match (name.as_str(), lt) {
                    ("min", true) | ("max", false) => a,
                    ("min", false) | ("max", true) => b,
                    _ => return Err(IrError::Unsupported { detail: format!("call `{name}`") }),
                }
            }
        };
        Ok(truncate(v, w))
    }

    /// C signedness of an expression (mirrors the symbolic lowering).
    fn signedness(&self, e: &Expr) -> bool {
        match e {
            Expr::Int(_) => true,
            Expr::Bool(_) => false,
            Expr::Builtin(_) => false,
            Expr::Ident(name) => match self.types.vars.get(name) {
                Some(VarInfo::Scalar { ty, .. }) => ty.is_signed(),
                _ => true,
            },
            Expr::Index { base, .. } => match self.types.vars.get(base) {
                Some(VarInfo::GlobalArray { elem })
                | Some(VarInfo::SharedArray { elem, .. })
                | Some(VarInfo::LocalArray { elem, .. }) => elem.is_signed(),
                _ => true,
            },
            Expr::Unary { op, arg } => match op {
                UnOp::Not => false,
                UnOp::Neg => true,
                UnOp::BitNot => self.signedness(arg),
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Shr | BinOp::Shl => self.signedness(lhs),
                _ if op.is_comparison() || op.is_logical() || *op == BinOp::Imp => false,
                _ => self.signedness(lhs) && self.signedness(rhs),
            },
            Expr::Ternary { then, els, .. } => self.signedness(then) && self.signedness(els),
            Expr::Call { args, .. } => args.iter().all(|a| self.signedness(a)),
        }
    }

    fn binop(&self, op: BinOp, a: u64, b: u64, signed: bool) -> u64 {
        let w = self.w;
        let (sa, sb) = (to_signed(a, w), to_signed(b, w));
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if signed {
                    if sb == 0 {
                        mask(w) // matches SMT-LIB semantics via |a|/0 path
                    } else {
                        truncate((sa.wrapping_div(sb)) as u64, w)
                    }
                } else {
                    a.checked_div(b).unwrap_or(mask(w))
                }
            }
            BinOp::Rem => {
                if signed {
                    if sb == 0 {
                        a
                    } else {
                        truncate((sa.wrapping_rem(sb)) as u64, w)
                    }
                } else if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::Shl => {
                if b >= w as u64 {
                    0
                } else {
                    a << b
                }
            }
            BinOp::Shr => {
                if signed {
                    let sh = b.min(w as u64 - 1) as u32;
                    truncate((to_signed(a, w) >> sh) as u64, w)
                } else if b >= w as u64 {
                    0
                } else {
                    a >> b
                }
            }
            BinOp::Eq => u64::from(a == b),
            BinOp::Ne => u64::from(a != b),
            BinOp::Lt => u64::from(if signed { sa < sb } else { a < b }),
            BinOp::Le => u64::from(if signed { sa <= sb } else { a <= b }),
            BinOp::Gt => u64::from(if signed { sa > sb } else { a > b }),
            BinOp::Ge => u64::from(if signed { sa >= sb } else { a >= b }),
            BinOp::And => u64::from(a != 0 && b != 0),
            BinOp::Or => u64::from(a != 0 || b != 0),
            BinOp::Imp => u64::from(a == 0 || b != 0),
        };
        truncate(v, w)
    }

    fn builtin(&self, b: Builtin) -> u64 {
        let ext = |e: crate::Extent| match e {
            crate::Extent::Const(v) => v,
            crate::Extent::Sym => unreachable!("config checked concrete"),
        };
        match b {
            Builtin::Tid(d) => self.thread.tid[dim_ix(d)],
            Builtin::Bid(d) => self.thread.bid[dim_ix(d).min(1)],
            Builtin::Bdim(d) => ext(self.cfg.bdim[dim_ix(d)]),
            Builtin::Gdim(d) => ext(self.cfg.gdim[dim_ix(d).min(1)]),
        }
    }
}

fn dim_ix(d: Dim) -> usize {
    match d {
        Dim::X => 0,
        Dim::Y => 1,
        Dim::Z => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_cuda::parse_kernel;

    fn run(src: &str, cfg: &GpuConfig, inputs: ConcreteInputs) -> ConcreteState {
        let k = parse_kernel(src).unwrap();
        let t = pug_cuda::check_kernel(&k).unwrap();
        run_concrete(&k, &t, cfg, &inputs).unwrap()
    }

    #[test]
    fn copies_elementwise() {
        let mut inputs = ConcreteInputs::default();
        inputs.arrays.insert("in".into(), HashMap::from([(0, 7), (1, 9)]));
        let st = run(
            "void k(int *out, int *in) { out[tid.x] = in[tid.x] + 1; }",
            &GpuConfig::concrete_1d(8, 2),
            inputs,
        );
        assert_eq!(st.read("out", 0), 8);
        assert_eq!(st.read("out", 1), 10);
    }

    #[test]
    fn reduction_sums() {
        let mut inputs = ConcreteInputs::default();
        inputs
            .arrays
            .insert("g_idata".into(), HashMap::from([(0, 1), (1, 2), (2, 3), (3, 4)]));
        let st = run(
            pug_kernels_src_reduce(),
            &GpuConfig::concrete_1d(8, 4),
            inputs,
        );
        assert_eq!(st.read("g_odata", 0), 10);
    }

    fn pug_kernels_src_reduce() -> &'static str {
        r#"
void reduce(int *g_odata, int *g_idata) {
    __shared__ int sdata[bdim.x];
    sdata[tid.x] = g_idata[tid.x];
    __syncthreads();
    for (unsigned int s = 1; s < bdim.x; s *= 2) {
        if ((tid.x % (2 * s)) == 0) { sdata[tid.x] += sdata[tid.x + s]; }
        __syncthreads();
    }
    if (tid.x == 0) g_odata[0] = sdata[0];
}
"#
    }

    #[test]
    fn natural_order_last_writer_wins() {
        let st = run(
            "void k(int *out) { out[0] = tid.x; }",
            &GpuConfig::concrete_1d(8, 4),
            ConcreteInputs::default(),
        );
        assert_eq!(st.read("out", 0), 3);
    }

    #[test]
    fn signed_guard_semantics() {
        // -1 < 3 holds as signed ints: 255 is negative at 8 bits.
        let st = run(
            "void k(int *out, int n) { int i = n; if (i < 3) out[0] = 1; }",
            &GpuConfig::concrete_1d(8, 1),
            ConcreteInputs {
                scalars: HashMap::from([("n".into(), 255u64)]),
                arrays: HashMap::new(),
            },
        );
        assert_eq!(st.read("out", 0), 1);
    }
}
