//! Barrier-interval structure: loop unrolling around barriers and splitting
//! a kernel body into barrier intervals (BIs, paper §II / §IV-C).

use crate::consteval::ConstEnv;
use crate::error::IrError;
use pug_cuda::ast::{Expr, LValue, Stmt};
use pug_cuda::token::Span;

/// Does this statement (recursively) contain a `__syncthreads()`?
pub fn contains_barrier(s: &Stmt) -> bool {
    match s {
        Stmt::Barrier { .. } => true,
        Stmt::If { then, els, .. } => {
            then.iter().any(contains_barrier) || els.iter().any(contains_barrier)
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => body.iter().any(contains_barrier),
        _ => false,
    }
}

/// Top-level structure of a kernel body for the parameterized encoder:
/// maximal barrier-free statement runs, interleaved with loops that contain
/// barriers (those are handled by loop alignment, §IV-E).
#[derive(Clone, Debug)]
pub enum Segment {
    /// Barrier-free statements forming (part of) a barrier interval.
    Straight(Vec<Stmt>),
    /// A `for` loop whose body contains barriers.
    Loop {
        init: Box<Stmt>,
        cond: Expr,
        update: Box<Stmt>,
        body: Vec<Stmt>,
        span: Span,
    },
}

/// Split a body into [`Segment`]s. Barriers under `if` are rejected
/// (barrier divergence); `while` loops with barriers are outside the subset.
pub fn split_segments(body: &[Stmt]) -> Result<Vec<Segment>, IrError> {
    let mut segments = Vec::new();
    let mut current: Vec<Stmt> = Vec::new();
    for s in body {
        match s {
            Stmt::Barrier { .. } => {
                segments.push(Segment::Straight(std::mem::take(&mut current)));
            }
            Stmt::If { span, .. } if contains_barrier(s) => {
                return Err(IrError::BarrierDivergence {
                    detail: format!("if-statement at {span} contains __syncthreads()"),
                });
            }
            Stmt::While { span, .. } if contains_barrier(s) => {
                return Err(IrError::Unsupported {
                    detail: format!("while-loop with a barrier at {span}; use a for-loop"),
                });
            }
            Stmt::For { init, cond, update, body: lb, span } if contains_barrier(s) => {
                if !current.is_empty() {
                    segments.push(Segment::Straight(std::mem::take(&mut current)));
                }
                segments.push(Segment::Loop {
                    init: init.clone(),
                    cond: cond.clone(),
                    update: update.clone(),
                    body: lb.clone(),
                    span: *span,
                });
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        segments.push(Segment::Straight(current));
    }
    Ok(segments)
}

/// Maximum loop-header iterations simulated during unrolling.
const MAX_HEADER_ITERS: usize = 1 << 16;

/// Replace every loop that contains a barrier by its unrolled iterations,
/// simulating the loop header numerically (requires the header to be
/// constant under `env` — i.e. a concrete configuration). Loop variables are
/// re-bound per iteration with explicit assignments. Barrier-free loops are
/// left intact (the executor unrolls them on the fly).
pub fn unroll_barrier_loops(body: &[Stmt], env: &ConstEnv) -> Result<Vec<Stmt>, IrError> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::For { init, cond, update, body: lb, span } if contains_barrier(s) => {
                let (var, mut value) = init_binding(init, env)?;
                let mut iters = 0usize;
                loop {
                    let mut e = env.clone();
                    e.vars.insert(var.clone(), value);
                    match e.eval(cond) {
                        Some(0) => break,
                        Some(_) => {}
                        None => {
                            return Err(IrError::SymbolicLoopBound {
                                detail: format!("loop condition at {span}"),
                            })
                        }
                    }
                    iters += 1;
                    if iters > MAX_HEADER_ITERS {
                        return Err(IrError::UnrollBudget { max: MAX_HEADER_ITERS });
                    }
                    // Rebind the loop variable, then emit the (recursively
                    // unrolled) iteration body.
                    out.push(Stmt::Assign {
                        lhs: LValue { name: var.clone(), indices: vec![] },
                        op: None,
                        rhs: Expr::Int(value),
                        span: *span,
                    });
                    let mut inner_env = env.clone();
                    inner_env.vars.insert(var.clone(), value);
                    out.extend(unroll_barrier_loops(lb, &inner_env)?);
                    value = step(update, &var, value, &e, *span)?;
                }
            }
            Stmt::If { span, .. } if contains_barrier(s) => {
                return Err(IrError::BarrierDivergence {
                    detail: format!("if at {span} contains __syncthreads()"),
                });
            }
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

fn init_binding(init: &Stmt, env: &ConstEnv) -> Result<(String, u64), IrError> {
    match init {
        Stmt::Decl { name, init: Some(e), .. } => {
            let v = env.eval(e).ok_or_else(|| IrError::SymbolicLoopBound {
                detail: format!("initializer of `{name}`"),
            })?;
            Ok((name.clone(), v))
        }
        Stmt::Assign { lhs, op: None, rhs, .. } if lhs.indices.is_empty() => {
            let v = env.eval(rhs).ok_or_else(|| IrError::SymbolicLoopBound {
                detail: format!("initializer of `{}`", lhs.name),
            })?;
            Ok((lhs.name.clone(), v))
        }
        _ => Err(IrError::Unsupported {
            detail: "barrier-loop initializer must bind a single scalar".into(),
        }),
    }
}

fn step(update: &Stmt, var: &str, value: u64, env: &ConstEnv, span: Span) -> Result<u64, IrError> {
    match update {
        Stmt::Assign { lhs, op, rhs, .. } if lhs.name == var && lhs.indices.is_empty() => {
            let mut e = env.clone();
            e.vars.insert(var.to_string(), value);
            let r = e.eval(rhs).ok_or_else(|| IrError::SymbolicLoopBound {
                detail: format!("update of `{var}` at {span}"),
            })?;
            let w = e.bits;
            let v = match op {
                None => r,
                Some(bop) => {
                    let combined = Expr::bin(*bop, Expr::Int(value), Expr::Int(r));
                    e.eval(&combined).ok_or_else(|| IrError::SymbolicLoopBound {
                        detail: format!("update of `{var}` at {span}"),
                    })?
                }
            };
            Ok(v & pug_smt::sort::mask(w))
        }
        _ => Err(IrError::Unsupported {
            detail: format!("barrier-loop update must assign the loop variable `{var}`"),
        }),
    }
}

/// Split a flat (already unrolled) body into barrier intervals. Any barrier
/// still nested in control flow is an error.
pub fn split_bis(body: &[Stmt]) -> Result<Vec<Vec<Stmt>>, IrError> {
    let mut bis: Vec<Vec<Stmt>> = vec![Vec::new()];
    for s in body {
        match s {
            Stmt::Barrier { .. } => bis.push(Vec::new()),
            other if contains_barrier(other) => {
                return Err(IrError::BarrierDivergence {
                    detail: "barrier nested in control flow after unrolling".into(),
                })
            }
            other => bis.last_mut().expect("non-empty").push(other.clone()),
        }
    }
    // Drop empty trailing/leading intervals produced by adjacent barriers.
    Ok(bis.into_iter().filter(|b| !b.is_empty()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pug_cuda::parser::parse_kernel;

    fn body(src: &str) -> Vec<Stmt> {
        parse_kernel(src).unwrap().body
    }

    #[test]
    fn splits_two_bis() {
        let b = body(
            "void k(int *d) { d[tid.x] = 1; __syncthreads(); d[tid.x] = d[tid.x + 1]; }",
        );
        let bis = split_bis(&b).unwrap();
        assert_eq!(bis.len(), 2);
    }

    #[test]
    fn unrolls_reduction_loop() {
        let src = r#"
void k(int *d) {
    for (unsigned int s = 1; s < bdim.x; s *= 2) {
        if (tid.x % (2 * s) == 0) d[tid.x] += d[tid.x + s];
        __syncthreads();
    }
}
"#;
        let b = body(src);
        let mut env = ConstEnv::new(16);
        env.bdim[0] = Some(8);
        let flat = unroll_barrier_loops(&b, &env).unwrap();
        let bis = split_bis(&flat).unwrap();
        // s = 1, 2, 4 → three iterations, barrier at each end
        assert_eq!(bis.len(), 3);
        // each BI starts by pinning the loop variable
        for (i, bi) in bis.iter().enumerate() {
            let Stmt::Assign { lhs, rhs, .. } = &bi[0] else { panic!() };
            assert_eq!(lhs.name, "s");
            assert_eq!(*rhs, Expr::Int(1 << i));
        }
    }

    #[test]
    fn descending_shift_loop() {
        let src = r#"
void k(int *d) {
    for (unsigned int s = bdim.x / 2; s > 0; s >>= 1) {
        d[tid.x] += d[tid.x + s];
        __syncthreads();
    }
}
"#;
        let b = body(src);
        let mut env = ConstEnv::new(16);
        env.bdim[0] = Some(16);
        let flat = unroll_barrier_loops(&b, &env).unwrap();
        let bis = split_bis(&flat).unwrap();
        assert_eq!(bis.len(), 4); // s = 8,4,2,1
    }

    #[test]
    fn symbolic_bound_is_reported() {
        let src = r#"
void k(int *d) {
    for (int s = 1; s < bdim.x; s *= 2) { d[tid.x] += d[s]; __syncthreads(); }
}
"#;
        let b = body(src);
        let env = ConstEnv::new(16); // bdim unknown
        assert!(matches!(
            unroll_barrier_loops(&b, &env),
            Err(IrError::SymbolicLoopBound { .. })
        ));
    }

    #[test]
    fn barrier_under_if_rejected() {
        let b = body("void k(int *d) { if (tid.x < 4) { __syncthreads(); } }");
        assert!(matches!(split_segments(&b), Err(IrError::BarrierDivergence { .. })));
    }

    #[test]
    fn segments_separate_loop() {
        let src = r#"
void k(int *d) {
    d[tid.x] = 0;
    __syncthreads();
    for (int s = 1; s < bdim.x; s *= 2) { d[tid.x] += d[tid.x + s]; __syncthreads(); }
    d[tid.x] = d[0];
}
"#;
        let b = body(src);
        let segs = split_segments(&b).unwrap();
        assert_eq!(segs.len(), 3);
        assert!(matches!(segs[0], Segment::Straight(_)));
        assert!(matches!(segs[1], Segment::Loop { .. }));
        assert!(matches!(segs[2], Segment::Straight(_)));
    }
}
