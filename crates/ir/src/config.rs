//! GPU launch configuration: grid/block dimensions, bit width, and the
//! symbolic-vs-concrete choice per dimension (the paper's "+C." flag).

use pug_smt::{Ctx, Sort, TermId};

/// One launch-configuration dimension: either a concrete value or fully
/// symbolic (constrained only to be non-zero).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Extent {
    /// Concrete extent — used by the non-parameterized encoder and by
    /// concretized ("+C.") parameterized runs.
    Const(u64),
    /// Symbolic extent — the parameterized default.
    Sym,
}

/// Launch configuration plus the bit-vector width used for *all* integer
/// values (the paper: "Z3's expressions are based on bit vectors; the
/// solving time depends on the number of bits", §V).
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Bit width of every integer (8, 12, 16, 32 in the paper's tables).
    pub bits: u32,
    /// Block dimensions (x, y, z).
    pub bdim: [Extent; 3],
    /// Grid dimensions (x, y).
    pub gdim: [Extent; 2],
}

impl GpuConfig {
    /// A 1-D configuration with a concrete block of `n` threads.
    pub fn concrete_1d(bits: u32, n: u64) -> GpuConfig {
        GpuConfig {
            bits,
            bdim: [Extent::Const(n), Extent::Const(1), Extent::Const(1)],
            gdim: [Extent::Const(1), Extent::Const(1)],
        }
    }

    /// A 2-D configuration with one concrete `bx × by` block.
    pub fn concrete_2d(bits: u32, bx: u64, by: u64) -> GpuConfig {
        GpuConfig {
            bits,
            bdim: [Extent::Const(bx), Extent::Const(by), Extent::Const(1)],
            gdim: [Extent::Const(1), Extent::Const(1)],
        }
    }

    /// Fully symbolic configuration (the parameterized default, "-C.").
    pub fn symbolic(bits: u32) -> GpuConfig {
        GpuConfig { bits, bdim: [Extent::Sym; 3], gdim: [Extent::Sym; 2] }
    }

    /// Symbolic 2-D configuration: `bdim.z` pinned to 1, everything else
    /// symbolic (the launch shape of the transpose/matmul kernels).
    pub fn symbolic_2d(bits: u32) -> GpuConfig {
        GpuConfig {
            bits,
            bdim: [Extent::Sym, Extent::Sym, Extent::Const(1)],
            gdim: [Extent::Sym; 2],
        }
    }

    /// Symbolic 1-D configuration: `bdim.y/z` and `gdim.y` pinned to 1
    /// (the launch shape of the reduction/scan kernels).
    pub fn symbolic_1d(bits: u32) -> GpuConfig {
        GpuConfig {
            bits,
            bdim: [Extent::Sym, Extent::Const(1), Extent::Const(1)],
            gdim: [Extent::Sym, Extent::Const(1)],
        }
    }

    /// Total threads per block when fully concrete.
    pub fn threads_per_block(&self) -> Option<u64> {
        match self.bdim {
            [Extent::Const(x), Extent::Const(y), Extent::Const(z)] => Some(x * y * z),
            _ => None,
        }
    }

    /// Total blocks when fully concrete.
    pub fn num_blocks(&self) -> Option<u64> {
        match self.gdim {
            [Extent::Const(x), Extent::Const(y)] => Some(x * y),
            _ => None,
        }
    }
}

/// The configuration bound to SMT terms: `bdim.x` etc. become either
/// constants or fresh variables, plus well-formedness side constraints
/// (every extent is non-zero; the paper's `bid.* < gdim.*`, `tid.* < bdim.*`
/// constraints are added per thread by the encoders).
#[derive(Clone, Debug)]
pub struct BoundConfig {
    pub bits: u32,
    pub bdim: [TermId; 3],
    pub gdim: [TermId; 2],
    /// Side constraints on symbolic extents (non-zero).
    pub constraints: Vec<TermId>,
}

impl GpuConfig {
    /// Bind the configuration in `ctx`, creating fresh variables for the
    /// symbolic extents. `prefix` keeps the two kernels of an equivalence
    /// check sharing the *same* configuration terms when passed identically.
    pub fn bind(&self, ctx: &mut Ctx, prefix: &str) -> BoundConfig {
        let w = self.bits;
        let mut constraints = Vec::new();
        let mut bind_dim = |ctx: &mut Ctx, name: String, e: Extent| -> TermId {
            match e {
                Extent::Const(v) => ctx.mk_bv_const(v, w),
                Extent::Sym => {
                    let v = ctx.mk_var(&name, Sort::BitVec(w));
                    let zero = ctx.mk_bv_const(0, w);
                    let nz = ctx.mk_neq(v, zero);
                    constraints.push(nz);
                    v
                }
            }
        };
        let bdim = [
            bind_dim(ctx, format!("{prefix}bdim.x"), self.bdim[0]),
            bind_dim(ctx, format!("{prefix}bdim.y"), self.bdim[1]),
            bind_dim(ctx, format!("{prefix}bdim.z"), self.bdim[2]),
        ];
        let gdim = [
            bind_dim(ctx, format!("{prefix}gdim.x"), self.gdim[0]),
            bind_dim(ctx, format!("{prefix}gdim.y"), self.gdim[1]),
        ];
        BoundConfig { bits: w, bdim, gdim, constraints }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_binding_folds_to_constants() {
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::concrete_2d(8, 4, 4);
        let b = cfg.bind(&mut ctx, "");
        assert_eq!(ctx.const_bv(b.bdim[0]), Some(4));
        assert_eq!(ctx.const_bv(b.gdim[0]), Some(1));
        assert!(b.constraints.is_empty());
        assert_eq!(cfg.threads_per_block(), Some(16));
    }

    #[test]
    fn symbolic_binding_adds_nonzero_constraints() {
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::symbolic(16);
        let b = cfg.bind(&mut ctx, "");
        assert_eq!(b.constraints.len(), 5);
        assert!(ctx.const_bv(b.bdim[0]).is_none());
        assert_eq!(cfg.threads_per_block(), None);
    }

    #[test]
    fn shared_prefix_shares_terms() {
        let mut ctx = Ctx::new();
        let cfg = GpuConfig::symbolic(16);
        let a = cfg.bind(&mut ctx, "");
        let b = cfg.bind(&mut ctx, "");
        assert_eq!(a.bdim[0], b.bdim[0]);
        let c = cfg.bind(&mut ctx, "other!");
        assert_ne!(a.bdim[0], c.bdim[0]);
    }
}
