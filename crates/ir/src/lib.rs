//! # pug-ir — kernel IR and analyses for PUGpara
//!
//! Bridges the CUDA front-end ([`pug_cuda`]) and the SMT layer
//! ([`pug_smt`]):
//!
//! * [`config`] — launch configurations (bit width, concrete/symbolic
//!   grid/block extents, the paper's "+C." concretization flag);
//! * [`exec`] — the symbolic executor implementing the paper's Γ translation
//!   (§III-A): SSA-by-construction locals, `ite`-merged branches, on-the-fly
//!   unrolling of concrete loops, pluggable [`exec::Memory`] models;
//! * [`structure`] — barrier-interval splitting and unrolling of loops that
//!   contain barriers (§II, §IV-C);
//! * [`align`] — loop-header normalization and alignment (§IV-E);
//! * [`consteval`] — numeric evaluation used to simulate loop headers.

pub mod align;
pub mod config;
pub mod consteval;
pub mod error;
pub mod exec;
pub mod interp;
pub mod structure;

pub use align::{align_headers, normalize_header, Alignment, Header, LoopSpace};
pub use config::{BoundConfig, Extent, GpuConfig};
pub use consteval::ConstEnv;
pub use error::IrError;
pub use interp::{run_concrete, run_concrete_logged, ConcreteAccess, ConcreteInputs, ConcreteState};
pub use exec::{Access, Env, ExecOutputs, Machine, Memory, StoreMemory, Val};
pub use structure::{contains_barrier, split_bis, split_segments, unroll_barrier_loops, Segment};
