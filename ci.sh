#!/usr/bin/env bash
# Repo CI: build, full test suite, lints, and the fault-injection smokes
# (sequential ladder and portfolio racing). Prints a per-suite wall-clock
# summary at the end so slow suites are visible in the log.
set -euo pipefail
cd "$(dirname "$0")"

SUITES=()
TIMES=()

run_suite() {
  local name="$1"
  shift
  echo "==> $name"
  local start=$SECONDS
  "$@"
  SUITES+=("$name")
  TIMES+=("$((SECONDS - start))")
}

run_suite "cargo build --release" cargo build --workspace --release
run_suite "cargo test" cargo test --workspace -q
run_suite "cargo clippy" cargo clippy --workspace --all-targets -- -D warnings
run_suite "fault-injection smoke (sequential)" \
  cargo run --release -p pug-bench --bin repro-tables -- --fault-injection --timeout 20
run_suite "fault-injection smoke (portfolio)" \
  cargo run --release -p pug-bench --bin repro-tables -- --portfolio --fault-injection
# Perf smoke: runs multi-obligation equivalence rows through the
# incremental, one-shot, and pooled (obligation parallelism 4) backends,
# exits non-zero if any verdict diverges across the three, and gates each
# row's incremental wall time against the committed baseline (>10% + 50 ms
# slack counts as a regression; rows absent from the quick grid are
# reported, not gated). Also runs the rung-improvement grid and exits
# non-zero unless at least one row's answering rung gets strictly
# stronger with the generalized quantifier elimination on, verdicts
# agreeing.
run_suite "perf smoke + regression gate" \
  cargo run --release -p pug-bench --bin repro-tables -- \
    --bench-json /tmp/bench_pr10_ci.json --quick --timeout 60 \
    --baseline BENCH_pr10.json
# Generalized-qelim smoke: the differential suite proving elimination-on
# and elimination-off report identical verdicts across the corpus and a
# fuzzed grid, that the symbolic-stride pair is answered by the fully
# parameterized rung only with the elimination on, and that an armed
# `core::qelim` failpoint degrades to the legacy drop path with correct
# provenance. Plus the replay gate: every race the checker calls provable
# must carry a schedule this suite independently re-parses and replays.
run_suite "qelim smoke" \
  cargo test -q --test qelim_differential
run_suite "race-replay smoke" \
  cargo test -q --test race_witness_replay
# Obligation-parallel smoke: the differential suite proving the pooled
# per-array screen is bit-identical to the sequential loop — corpus pairs
# at pool widths 2 and 8 on both backends, plus the engagement check that
# a multi-output pair actually forks worker sessions (and that a decisive
# screen falls back to the sequential answer).
run_suite "obligation-parallel smoke" \
  cargo test -q --test obligation_parallel_differential -- \
    pooled_matches_sequential_on_corpus pooled_screen_engages_and_merges_deterministically
# Canonicalization smoke: the differential suite proving normalize-on and
# normalize-off report the same verdicts and outcome classes on the corpus,
# plus the cache-effectiveness regression against the pre-normalization
# baseline (miss counts must not grow, hit rate must improve, and at least
# one obligation must be discharged by rewriting alone).
run_suite "normalize smoke" \
  cargo test -q --test normalize_differential corpus_pairs_agree
run_suite "cache-effectiveness gate" \
  cargo test -q -p pug-bench --test cache_effectiveness
# Observability smoke: one fully traced equivalence check; the JSONL export
# is re-parsed and the span tree structurally validated (balanced opens and
# closes, strictly increasing sequence). Non-zero exit on a broken trace.
run_suite "trace smoke" \
  cargo run --release -p pug-bench --bin repro-tables -- --trace /tmp/pug_trace_ci.jsonl
# Service smoke: starts the pug-serve daemon on an ephemeral port with
# per-job obligation parallelism 2 (weighted admission), runs corpus jobs
# over the wire (including one with an armed runner failpoint), asserts
# verdicts byte-identical to the sequential in-process runner, checks the
# /metrics endpoint, and times a graceful shutdown. Non-zero exit on any
# disagreement or a dirty drain.
run_suite "serve smoke" \
  cargo run --release -p pug-serve -- --smoke

echo
echo "== wall-clock summary"
for i in "${!SUITES[@]}"; do
  printf '%-40s %4ss\n' "${SUITES[$i]}" "${TIMES[$i]}"
done
echo "CI OK"
