#!/usr/bin/env bash
# Repo CI: build, full test suite, lints, and the fault-injection smoke.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fault-injection smoke"
cargo run --release -p pug-bench --bin repro-tables -- --fault-injection --timeout 20

echo "CI OK"
