#!/usr/bin/env bash
# Repo CI: build, full test suite, lints, and the fault-injection smokes
# (sequential ladder and portfolio racing). Prints a per-suite wall-clock
# summary at the end so slow suites are visible in the log.
set -euo pipefail
cd "$(dirname "$0")"

SUITES=()
TIMES=()

run_suite() {
  local name="$1"
  shift
  echo "==> $name"
  local start=$SECONDS
  "$@"
  SUITES+=("$name")
  TIMES+=("$((SECONDS - start))")
}

run_suite "cargo build --release" cargo build --workspace --release
run_suite "cargo test" cargo test --workspace -q
run_suite "cargo clippy" cargo clippy --workspace --all-targets -- -D warnings
run_suite "fault-injection smoke (sequential)" \
  cargo run --release -p pug-bench --bin repro-tables -- --fault-injection --timeout 20
run_suite "fault-injection smoke (portfolio)" \
  cargo run --release -p pug-bench --bin repro-tables -- --portfolio --fault-injection
# Incremental-vs-one-shot perf smoke: runs multi-obligation equivalence rows
# through both backends, exits non-zero if any verdict diverges, and gates
# each row's wall time against the committed baseline (>10% + 50 ms slack
# counts as a regression; rows absent from the quick grid are reported, not
# gated).
run_suite "perf smoke + regression gate" \
  cargo run --release -p pug-bench --bin repro-tables -- \
    --bench-json /tmp/bench_pr8_ci.json --quick --timeout 60 \
    --baseline BENCH_pr8.json
# Canonicalization smoke: the differential suite proving normalize-on and
# normalize-off report the same verdicts and outcome classes on the corpus,
# plus the cache-effectiveness regression against the pre-normalization
# baseline (miss counts must not grow, hit rate must improve, and at least
# one obligation must be discharged by rewriting alone).
run_suite "normalize smoke" \
  cargo test -q --test normalize_differential corpus_pairs_agree
run_suite "cache-effectiveness gate" \
  cargo test -q -p pug-bench --test cache_effectiveness
# Observability smoke: one fully traced equivalence check; the JSONL export
# is re-parsed and the span tree structurally validated (balanced opens and
# closes, strictly increasing sequence). Non-zero exit on a broken trace.
run_suite "trace smoke" \
  cargo run --release -p pug-bench --bin repro-tables -- --trace /tmp/pug_trace_ci.jsonl
# Service smoke: starts the pug-serve daemon on an ephemeral port, runs
# corpus jobs over the wire (including one with an armed runner failpoint),
# asserts verdicts byte-identical to the in-process runner, checks the
# /metrics endpoint, and times a graceful shutdown. Non-zero exit on any
# disagreement or a dirty drain.
run_suite "serve smoke" \
  cargo run --release -p pug-serve -- --smoke

echo
echo "== wall-clock summary"
for i in "${!SUITES[@]}"; do
  printf '%-40s %4ss\n' "${SUITES[$i]}" "${TIMES[$i]}"
done
echo "CI OK"
